"""Secure record channel tests."""

import pytest

from repro import faults
from repro.errors import ProtocolError
from repro.net.channel import SecureRecordChannel
from repro.sgx.attestation import SessionKeys

KEYS = SessionKeys.derive(b"shared secret", b"\x42" * 32)


def make_pair(cipher="ctr"):
    return (
        SecureRecordChannel(KEYS, "initiator", cipher),
        SecureRecordChannel(KEYS, "responder", cipher),
    )


class TestCtrChannel:
    def test_roundtrip_both_directions(self):
        a, b = make_pair()
        assert b.open(a.protect(b"hello")) == b"hello"
        assert a.open(b.protect(b"world")) == b"world"

    def test_multiple_records_in_order(self):
        a, b = make_pair()
        msgs = [b"one", b"two", b"three", b"", b"five" * 100]
        for m in msgs:
            assert b.open(a.protect(m)) == m

    def test_ciphertext_hides_plaintext(self):
        a, _ = make_pair()
        record = a.protect(b"confidential routing policy")
        assert b"confidential" not in record

    def test_tampered_record_rejected(self):
        a, b = make_pair()
        record = bytearray(a.protect(b"data"))
        record[10] ^= 0x01
        with pytest.raises(ProtocolError, match="MAC"):
            b.open(bytes(record))

    def test_replay_rejected(self):
        a, b = make_pair()
        record = a.protect(b"data")
        b.open(record)
        with pytest.raises(ProtocolError, match="sequence|MAC"):
            b.open(record)

    def test_reorder_rejected(self):
        a, b = make_pair()
        r1 = a.protect(b"first")
        r2 = a.protect(b"second")
        with pytest.raises(ProtocolError):
            b.open(r2)

    def test_short_record_rejected(self):
        _, b = make_pair()
        with pytest.raises(ProtocolError):
            b.open(b"tiny")

    def test_directions_use_distinct_keys(self):
        a, b = make_pair()
        record_from_a = a.protect(b"same plaintext")
        record_from_b = b.protect(b"same plaintext")
        assert record_from_a != record_from_b


class TestEcbChannel:
    def test_roundtrip(self):
        a, b = make_pair("ecb")
        assert b.open(a.protect(b"paper-parity mode")) == b"paper-parity mode"

    def test_replay_rejected_by_sequence(self):
        a, b = make_pair("ecb")
        record = a.protect(b"data")
        b.open(record)
        with pytest.raises(ProtocolError, match="sequence"):
            b.open(record)

    def test_ecb_mode_has_no_mac(self):
        a_ctr, _ = make_pair("ctr")
        a_ecb, _ = make_pair("ecb")
        # Same plaintext: the ECB record is smaller by the MAC.
        ctr_len = len(a_ctr.protect(b"x" * 64))
        ecb_len = len(a_ecb.protect(b"x" * 64))
        assert ctr_len - ecb_len >= 16


class TestDamagedRecords:
    """``open`` on truncated, bit-flipped and replayed records."""

    def test_truncated_at_every_boundary_rejected(self):
        a, _ = make_pair()
        record = a.protect(b"payload-to-truncate")
        for cut in (0, 1, 8, 31, len(record) // 2, len(record) - 1):
            _, fresh_b = make_pair()
            with pytest.raises(ProtocolError):
                fresh_b.open(record[:cut])

    def test_bit_flip_at_every_position_rejected(self):
        a, _ = make_pair()
        record = a.protect(b"bit-flip sweep")
        for position in range(len(record)):
            damaged = bytearray(record)
            damaged[position] ^= 0x80
            _, fresh_b = make_pair()
            with pytest.raises(ProtocolError, match="MAC"):
                fresh_b.open(bytes(damaged))

    def test_replay_after_progress_rejected(self):
        a, b = make_pair()
        first = a.protect(b"one")
        assert b.open(first) == b"one"
        assert b.open(a.protect(b"two")) == b"two"
        with pytest.raises(ProtocolError, match="sequence|MAC"):
            b.open(first)

    def test_mac_corrupt_fault_is_detected_not_silent(self):
        plan = faults.FaultPlan(
            seed=3, rules=[faults.FaultRule(faults.MAC_CORRUPT, max_count=1)]
        )
        a, b = make_pair()
        with faults.active(plan):
            record = a.protect(b"faulted record")
        assert [e.kind for e in plan.log] == [faults.MAC_CORRUPT]
        # One flipped bit: the receiver's MAC check must catch it.
        with pytest.raises(ProtocolError, match="MAC"):
            b.open(record)

    def test_mac_corrupt_rule_exhausts_after_max_count(self):
        plan = faults.FaultPlan(
            seed=3, rules=[faults.FaultRule(faults.MAC_CORRUPT, max_count=1)]
        )
        a, _ = make_pair()
        twin, _ = make_pair()  # identical keys, no faults
        with faults.active(plan):
            first = a.protect(b"first record")
            second = a.protect(b"second record")
        assert len(plan.log) == 1  # max_count stops after one injection
        assert first != twin.protect(b"first record")  # the corrupted one
        assert second == twin.protect(b"second record")  # untouched


class TestValidation:
    def test_bad_role_rejected(self):
        with pytest.raises(ProtocolError):
            SecureRecordChannel(KEYS, "middleman")

    def test_bad_cipher_rejected(self):
        with pytest.raises(ProtocolError):
            SecureRecordChannel(KEYS, "initiator", cipher="rot13")
