"""Datagram fabric and reliable-stream tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import Rng
from repro.errors import NetworkError
from repro.net.network import MTU, LinkParams, Network
from repro.net.sim import Simulator
from repro.net.transport import MSS, StreamListener, connect


def make_net(loss=0.0, latency=0.005, seed=b"net-test"):
    sim = Simulator()
    net = Network(
        sim,
        rng=Rng(seed),
        default_link=LinkParams(latency=latency, loss_rate=loss),
    )
    return sim, net


class TestDatagrams:
    def test_delivery_to_bound_port(self):
        sim, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        inbox = b.bind(80)
        got = []

        def server():
            dgram = yield inbox.get()
            got.append((dgram.src, dgram.payload, sim.now))

        sim.spawn(server())
        a.send("b", 80, b"ping")
        sim.run()
        assert got[0][0] == "a"
        assert got[0][1] == b"ping"
        assert got[0][2] >= 0.005  # link latency applied

    def test_unbound_port_drops(self):
        sim, net = make_net()
        a = net.add_host("a")
        net.add_host("b")
        a.send("b", 9, b"void")
        sim.run()
        assert net.stats.dropped_unbound == 1
        assert net.stats.delivered == 0

    def test_unknown_host_raises(self):
        sim, net = make_net()
        a = net.add_host("a")
        with pytest.raises(NetworkError, match="no route"):
            a.send("ghost", 1, b"x")

    def test_mtu_enforced(self):
        sim, net = make_net()
        a = net.add_host("a")
        net.add_host("b")
        with pytest.raises(NetworkError, match="MTU"):
            a.send("b", 1, b"x" * (MTU + 1))

    def test_duplicate_host_rejected(self):
        _, net = make_net()
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_duplicate_bind_rejected(self):
        _, net = make_net()
        a = net.add_host("a")
        a.bind(5)
        with pytest.raises(NetworkError):
            a.bind(5)

    def test_link_override_changes_latency(self):
        sim, net = make_net(latency=0.010)
        a = net.add_host("a")
        b = net.add_host("b")
        net.set_link("a", "b", LinkParams(latency=0.200))
        inbox = b.bind(80)
        arrival = []

        def server():
            yield inbox.get()
            arrival.append(sim.now)

        sim.spawn(server())
        a.send("b", 80, b"x")
        sim.run()
        assert arrival[0] >= 0.200

    def test_loss_rate_one_drops_everything(self):
        sim, net = make_net(loss=1.0)
        a = net.add_host("a")
        b = net.add_host("b")
        b.bind(80)
        for _ in range(10):
            a.send("b", 80, b"x")
        sim.run()
        assert net.stats.dropped_loss == 10

    def test_tap_can_observe_and_drop(self):
        sim, net = make_net()
        a = net.add_host("a")
        b = net.add_host("b")
        b.bind(80)
        seen = []

        def tap(dgram):
            seen.append(dgram.payload)
            return None  # drop everything

        net.tap = tap
        a.send("b", 80, b"observed")
        sim.run()
        assert seen == [b"observed"]
        assert net.stats.delivered == 0


class TestStreams:
    def run_exchange(self, messages, loss=0.0, seed=b"stream"):
        """Client sends ``messages``; server echoes them reversed."""
        sim, net = make_net(loss=loss, seed=seed)
        client_host = net.add_host("client")
        server_host = net.add_host("server")
        listener = StreamListener(server_host, 7)
        received_by_server = []
        echoed_back = []

        def server():
            conn = yield listener.accept()
            for _ in messages:
                msg = yield conn.recv_message()
                received_by_server.append(msg)
                conn.send_message(msg[::-1])

        def client():
            conn = yield from connect(client_host, "server", 7)
            for m in messages:
                conn.send_message(m)
            for _ in messages:
                echoed_back.append((yield conn.recv_message()))

        sim.spawn(server())
        sim.spawn(client())
        sim.run(until=120.0)
        return received_by_server, echoed_back, net

    def test_basic_roundtrip(self):
        msgs = [b"alpha", b"beta", b"gamma"]
        got, echoed, _ = self.run_exchange(msgs)
        assert got == msgs
        assert echoed == [m[::-1] for m in msgs]

    def test_large_message_segmentation(self):
        big = bytes(range(256)) * 40  # 10240 bytes > several segments
        got, echoed, _ = self.run_exchange([big])
        assert got == [big]
        assert echoed == [big[::-1]]

    def test_empty_message(self):
        got, echoed, _ = self.run_exchange([b""])
        assert got == [b""]

    def test_in_order_delivery_under_loss(self):
        msgs = [f"msg-{i}".encode() * 50 for i in range(10)]
        got, echoed, net = self.run_exchange(msgs, loss=0.10)
        assert got == msgs
        assert echoed == [m[::-1] for m in msgs]
        assert net.stats.dropped_loss > 0  # the loss really happened

    def test_handshake_survives_loss(self):
        got, _, _ = self.run_exchange([b"hello"], loss=0.25, seed=b"lossy-shake")
        assert got == [b"hello"]

    def test_connect_to_dead_port_times_out(self):
        sim, net = make_net()
        a = net.add_host("a")
        net.add_host("b")  # no listener
        failures = []

        def client():
            try:
                yield from connect(a, "b", 7, timeout=0.1, retries=2)
            except NetworkError as exc:
                failures.append(str(exc))

        sim.spawn(client())
        sim.run()
        assert failures and "timed out" in failures[0]

    def test_concurrent_connections_demux(self):
        sim, net = make_net()
        server_host = net.add_host("server")
        listener = StreamListener(server_host, 7)
        outputs = {}

        def server():
            while True:
                conn = yield listener.accept()
                sim.spawn(handle(conn))

        def handle(conn):
            msg = yield conn.recv_message()
            conn.send_message(b"re:" + msg)

        def client(name):
            host = net.add_host(name)
            conn = yield from connect(host, "server", 7)
            conn.send_message(name.encode())
            outputs[name] = yield conn.recv_message()

        sim.spawn(server())
        for i in range(5):
            sim.spawn(client(f"c{i}"))
        sim.run(until=30.0)
        assert outputs == {f"c{i}": f"re:c{i}".encode() for i in range(5)}

    def test_fin_delivers_eof(self):
        sim, net = make_net()
        client_host = net.add_host("client")
        server_host = net.add_host("server")
        listener = StreamListener(server_host, 7)
        events = []

        def server():
            conn = yield listener.accept()
            msg = yield conn.recv_message()
            events.append(msg)
            eof = yield conn.recv_message()
            events.append(eof)

        def client():
            conn = yield from connect(client_host, "server", 7)
            conn.send_message(b"bye")
            conn.close()

        sim.spawn(server())
        sim.spawn(client())
        sim.run(until=30.0)
        assert events == [b"bye", None]

    def test_send_after_close_rejected(self):
        sim, net = make_net()
        client_host = net.add_host("client")
        server_host = net.add_host("server")
        StreamListener(server_host, 7)
        errors = []

        def client():
            conn = yield from connect(client_host, "server", 7)
            conn.close()
            try:
                conn.send_message(b"late")
            except NetworkError as exc:
                errors.append(str(exc))

        sim.spawn(client())
        sim.run(until=10.0)
        assert errors

    def test_no_retransmissions_on_lossless_link(self):
        sim, net = make_net()
        client_host = net.add_host("client")
        server_host = net.add_host("server")
        listener = StreamListener(server_host, 7)
        socks = []

        def server():
            conn = yield listener.accept()
            yield conn.recv_message()

        def client():
            conn = yield from connect(client_host, "server", 7)
            socks.append(conn)
            conn.send_message(b"x" * (MSS * 3))

        sim.spawn(server())
        sim.spawn(client())
        sim.run(until=10.0)
        assert socks[0].retransmissions == 0


@settings(max_examples=10, deadline=None)
@given(
    messages=st.lists(st.binary(min_size=0, max_size=5000), min_size=1, max_size=6),
    loss_pct=st.integers(min_value=0, max_value=20),
)
def test_property_stream_delivers_exactly_in_order(messages, loss_pct):
    sim = Simulator()
    net = Network(
        sim,
        rng=Rng(repr((messages, loss_pct)).encode()),
        default_link=LinkParams(latency=0.002, loss_rate=loss_pct / 100),
    )
    client_host = net.add_host("client")
    server_host = net.add_host("server")
    listener = StreamListener(server_host, 7)
    got = []

    def server():
        conn = yield listener.accept()
        for _ in messages:
            got.append((yield conn.recv_message()))

    def client():
        conn = yield from connect(client_host, "server", 7, retries=30)
        for m in messages:
            conn.send_message(m)

    sim.spawn(server())
    sim.spawn(client())
    sim.run(until=300.0)
    assert got == list(messages)
