"""Tests for the cost-accounting layer."""

import dataclasses

import pytest

from repro.cost import (
    UNTRUSTED,
    CostAccountant,
    Counter,
    CostModel,
    DEFAULT_MODEL,
    cycles,
    disabled,
    format_count,
    format_table,
    render_comparison,
    render_counters,
)
from repro.cost import context as cost_context


class TestCounter:
    def test_iadd_accumulates_all_fields(self):
        a = Counter(1, 2, 3, 4)
        a += Counter(10, 20, 30, 40)
        assert a == Counter(11, 22, 33, 44)

    def test_sub_produces_delta(self):
        assert Counter(5, 5, 5, 5) - Counter(1, 2, 3, 4) == Counter(4, 3, 2, 1)

    def test_copy_is_independent(self):
        a = Counter(1, 1, 1, 1)
        b = a.copy()
        b.sgx_instructions += 1
        assert a.sgx_instructions == 1

    def test_as_dict_covers_every_field(self):
        c = Counter(1, 2, 3, 4, 5, 6)
        assert c.as_dict() == {
            "sgx_instructions": 1,
            "normal_instructions": 2,
            "enclave_crossings": 3,
            "allocations": 4,
            "switchless_calls": 5,
            "faults_injected": 6,
        }

    def test_cycles_helper_matches_model(self):
        c = Counter(sgx_instructions=8, normal_instructions=348_000_000)
        assert cycles(c) == DEFAULT_MODEL.cycles(8, 348e6)

    def test_cycles_helper_custom_model(self):
        model = CostModel(sgx_instruction_cycles=100)
        c = Counter(sgx_instructions=2, normal_instructions=0)
        assert cycles(c, model) == model.cycles(2, 0)


class TestCostAccountant:
    def test_default_domain_is_untrusted(self):
        acct = CostAccountant()
        assert acct.current_domain == UNTRUSTED

    def test_charges_go_to_current_domain(self):
        acct = CostAccountant()
        acct.charge_normal(100)
        with acct.attribute("enclave:test"):
            acct.charge_normal(7)
            acct.charge_sgx(2)
        assert acct.counter(UNTRUSTED).normal_instructions == 100
        assert acct.counter("enclave:test").normal_instructions == 7
        assert acct.counter("enclave:test").sgx_instructions == 2

    def test_attribute_nests_and_unwinds(self):
        acct = CostAccountant()
        with acct.attribute("a"):
            with acct.attribute("b"):
                assert acct.current_domain == "b"
            assert acct.current_domain == "a"
        assert acct.current_domain == UNTRUSTED

    def test_attribute_unwinds_on_exception(self):
        acct = CostAccountant()
        with pytest.raises(ValueError):
            with acct.attribute("a"):
                raise ValueError
        assert acct.current_domain == UNTRUSTED

    def test_total_sums_domains(self):
        acct = CostAccountant()
        acct.charge_normal(10)
        with acct.attribute("x"):
            acct.charge_normal(5)
            acct.charge_crossing()
        total = acct.total()
        assert total.normal_instructions == 15
        assert total.enclave_crossings == 1

    def test_snapshot_delta(self):
        acct = CostAccountant()
        acct.charge_normal(10)
        before = acct.snapshot()
        acct.charge_normal(3)
        with acct.attribute("new"):
            acct.charge_sgx(1)
        delta = acct.delta(before)
        assert delta[UNTRUSTED].normal_instructions == 3
        assert delta["new"].sgx_instructions == 1

    def test_disabled_context_suppresses_charges(self):
        acct = CostAccountant()
        with disabled(acct):
            acct.charge_normal(1000)
        assert acct.total().normal_instructions == 0
        acct.charge_normal(1)
        assert acct.total().normal_instructions == 1

    def test_reset_clears_counters(self):
        acct = CostAccountant()
        acct.charge_normal(5)
        acct.reset()
        assert acct.total() == Counter()

    def test_reset_inside_open_attribute_block_keeps_domain(self):
        # reset() zeroes counters but must NOT touch the domain stack:
        # charges after the reset keep flowing to the still-stacked
        # domain (its counter is recreated on first use).
        acct = CostAccountant()
        with acct.attribute("enclave:x"):
            acct.charge_normal(5)
            acct.reset()
            assert acct.current_domain == "enclave:x"
            acct.charge_normal(7)
            acct.charge_sgx(2)
        assert acct.counter("enclave:x").normal_instructions == 7
        assert acct.counter("enclave:x").sgx_instructions == 2
        assert acct.total().normal_instructions == 7

    def test_reset_inside_nested_attribute_unwinds_cleanly(self):
        acct = CostAccountant()
        with acct.attribute("enclave:outer"):
            with acct.attribute("enclave:inner"):
                acct.reset()
            # Inner frame popped normally even though its counter died.
            assert acct.current_domain == "enclave:outer"
            acct.charge_normal(1)
        assert acct.counter("enclave:outer").normal_instructions == 1
        assert acct.current_domain == UNTRUSTED

    def test_exception_after_reset_still_unwinds_domain_stack(self):
        acct = CostAccountant()
        with pytest.raises(ValueError):
            with acct.attribute("enclave:x"):
                acct.reset()
                raise ValueError
        assert acct.current_domain == UNTRUSTED
        acct.charge_normal(3)
        assert acct.counter(UNTRUSTED).normal_instructions == 3


class TestCostModel:
    def test_cycle_formula_matches_paper_footnote6(self):
        # Challenger w/ DH: 8 SGX(U) + 348M normal -> ~626M cycles.
        model = CostModel()
        cycles = model.cycles(8, 348e6)
        assert cycles == pytest.approx(626.48e6, rel=0.01)

    def test_remote_platform_cycles(self):
        # Target + quoting w/ DH: 37 SGX(U) + 4463M normal -> ~8033M.
        model = CostModel()
        cycles = model.cycles(37, 4463e6)
        assert cycles == pytest.approx(8033.77e6, rel=0.01)

    def test_modexp_scales_cubically(self):
        model = CostModel()
        assert model.modexp_normal(2048) == pytest.approx(
            8 * model.modexp_1024_normal, rel=0.01
        )

    def test_aes_cost_rounds_up_to_blocks(self):
        model = CostModel()
        assert model.aes_normal(1) == model.aes_block_normal
        assert model.aes_normal(16) == model.aes_block_normal
        assert model.aes_normal(17) == 2 * model.aes_block_normal

    def test_table2_calibration_one_packet(self):
        # fixed + 1 packet = 13K normal instructions (paper Table 2).
        model = CostModel()
        total = model.send_call_fixed_normal + model.send_per_packet_normal
        assert total == 13_000

    def test_table2_calibration_hundred_packets(self):
        model = CostModel()
        total = model.send_call_fixed_normal + 100 * model.send_per_packet_normal
        assert total == 135_958  # paper: 136K
        sgx = model.send_call_fixed_sgx + 100 * model.send_per_packet_sgx
        assert sgx == 204

    def test_model_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_MODEL.sgx_instruction_cycles = 1


class TestAmbientContext:
    def test_no_accountant_is_noop(self):
        cost_context.charge_normal(100)  # must not raise
        assert cost_context.current_accountant() is None

    def test_use_accountant_routes_charges(self):
        acct = CostAccountant()
        with cost_context.use_accountant(acct):
            cost_context.charge_normal(42)
            cost_context.charge_sgx(3)
        assert acct.total().normal_instructions == 42
        assert acct.total().sgx_instructions == 3

    def test_nested_accountants_restore(self):
        a1, a2 = CostAccountant(), CostAccountant()
        with cost_context.use_accountant(a1):
            with cost_context.use_accountant(a2):
                cost_context.charge_normal(5)
            cost_context.charge_normal(7)
        assert a2.total().normal_instructions == 5
        assert a1.total().normal_instructions == 7

    def test_charge_allocation_adds_model_cost(self):
        acct = CostAccountant()
        with cost_context.use_accountant(acct):
            cost_context.charge_allocation(2)
        assert acct.total().allocations == 2
        assert (
            acct.total().normal_instructions
            == 2 * DEFAULT_MODEL.enclave_alloc_normal
        )

    def test_custom_model_in_context(self):
        acct = CostAccountant()
        model = CostModel(enclave_alloc_normal=7)
        with cost_context.use_accountant(acct, model):
            assert cost_context.current_model().enclave_alloc_normal == 7
            cost_context.charge_allocation()
        assert acct.total().normal_instructions == 7
        assert cost_context.current_model() is DEFAULT_MODEL


class TestReporting:
    def test_format_count_units(self):
        assert format_count(12) == "12"
        assert format_count(13_000) == "13K"
        assert format_count(154e6) == "154M"
        assert format_count(4.338e9) == "4.34G"

    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_counters(self):
        out = render_counters({"untrusted": Counter(2, 1000, 0, 0)})
        assert "untrusted" in out
        assert "1000" in out or "1K" in out

    def test_render_comparison_ratio(self):
        out = render_comparison([("x", 90.0, 100.0)])
        assert "0.90x" in out

    def test_render_comparison_handles_missing_paper_value(self):
        out = render_comparison([("x", 90.0, None)])
        assert "-" in out


class TestAccountantEdgeCases:
    def test_nested_attribute_unwinds_on_exception(self):
        acct = CostAccountant()
        with pytest.raises(ValueError):
            with acct.attribute("enclave:a"):
                with acct.attribute("enclave:b"):
                    assert acct.current_domain == "enclave:b"
                    raise ValueError("boom")
        # Both frames must have been popped despite the exception.
        assert acct.current_domain == UNTRUSTED
        acct.charge_normal(5)
        assert acct.counter(UNTRUSTED).normal_instructions == 5

    def test_attribute_partial_unwind(self):
        acct = CostAccountant()
        with acct.attribute("enclave:outer"):
            with pytest.raises(RuntimeError):
                with acct.attribute("enclave:inner"):
                    raise RuntimeError
            # Only the inner frame popped; still inside the outer one.
            assert acct.current_domain == "enclave:outer"
        assert acct.current_domain == UNTRUSTED

    def test_delta_against_snapshot_missing_domains(self):
        acct = CostAccountant()
        acct.charge_normal(10)
        before = acct.snapshot()
        with acct.attribute("enclave:new"):
            acct.charge_sgx(3)
        delta = acct.delta(before)
        # A domain born after the snapshot diffs against a zero counter.
        assert delta["enclave:new"].sgx_instructions == 3
        assert delta[UNTRUSTED].normal_instructions == 0

    def test_delta_ignores_domains_only_in_snapshot(self):
        acct = CostAccountant()
        with acct.attribute("enclave:gone"):
            acct.charge_normal(1)
        before = acct.snapshot()
        acct.reset()
        acct.charge_normal(2)
        delta = acct.delta(before)
        assert "enclave:gone" not in delta
        assert delta[UNTRUSTED].normal_instructions == 2

    def test_disabled_reentrant(self):
        acct = CostAccountant()
        with disabled(acct):
            with disabled(acct):
                acct.charge_normal(100)
                assert not acct.enabled
            # The inner exit must not re-enable inside the outer block.
            assert not acct.enabled
            acct.charge_sgx()
        assert acct.enabled
        assert acct.total() == Counter()

    def test_disabled_restores_on_exception(self):
        acct = CostAccountant()
        with pytest.raises(KeyError):
            with disabled(acct):
                raise KeyError
        assert acct.enabled

    def test_disabled_suppresses_all_charge_kinds(self):
        acct = CostAccountant()
        with disabled(acct):
            acct.charge_normal(1)
            acct.charge_sgx()
            acct.charge_crossing()
            acct.charge_allocation()
            acct.charge_switchless()
        assert acct.total() == Counter()

    def test_counter_switchless_arithmetic(self):
        a = Counter(1, 2, 3, 4, 5)
        b = Counter(1, 1, 1, 1, 1)
        a += b
        assert a.switchless_calls == 6
        assert (a - b).switchless_calls == 5

    def test_charge_switchless_lands_in_current_domain(self):
        acct = CostAccountant()
        with acct.attribute("enclave:x"):
            acct.charge_switchless(4)
        assert acct.counter("enclave:x").switchless_calls == 4
        assert acct.counter(UNTRUSTED).switchless_calls == 0
