"""Aho-Corasick and the streaming DPI engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiddleboxError
from repro.middlebox.dpi import AhoCorasick, DpiAction, DpiEngine, DpiRule


class TestAhoCorasick:
    def test_single_pattern(self):
        ac = AhoCorasick({"r": b"abc"})
        matches, _ = ac.search(b"xxabcxx")
        assert matches == [(5, "r")]

    def test_multiple_patterns_overlapping(self):
        ac = AhoCorasick({"he": b"he", "she": b"she", "hers": b"hers", "his": b"his"})
        matches, _ = ac.search(b"ushers")
        found = {(pos, rid) for pos, rid in matches}
        assert found == {(4, "she"), (4, "he"), (6, "hers")}

    def test_repeated_matches(self):
        ac = AhoCorasick({"r": b"aa"})
        matches, _ = ac.search(b"aaaa")
        assert [pos for pos, _ in matches] == [2, 3, 4]

    def test_no_match(self):
        ac = AhoCorasick({"r": b"needle"})
        matches, _ = ac.search(b"haystack without it")
        assert matches == []

    def test_streaming_across_chunks(self):
        ac = AhoCorasick({"r": b"boundary"})
        matches1, state = ac.search(b"...boun")
        assert matches1 == []
        matches2, _ = ac.search(b"dary...", state)
        assert [rid for _, rid in matches2] == ["r"]

    def test_pattern_equal_to_input(self):
        ac = AhoCorasick({"r": b"exact"})
        matches, _ = ac.search(b"exact")
        assert matches == [(5, "r")]

    def test_binary_patterns(self):
        ac = AhoCorasick({"r": bytes([0, 255, 0])})
        matches, _ = ac.search(bytes([1, 0, 255, 0, 1]))
        assert len(matches) == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(MiddleboxError):
            AhoCorasick({"r": b""})

    def test_no_patterns_rejected(self):
        with pytest.raises(MiddleboxError):
            AhoCorasick({})


@settings(max_examples=30, deadline=None)
@given(
    haystack=st.binary(max_size=200),
    needles=st.lists(
        st.binary(min_size=1, max_size=5), min_size=1, max_size=4, unique=True
    ),
)
def test_property_matches_agree_with_find(haystack, needles):
    ac = AhoCorasick({f"r{i}": n for i, n in enumerate(needles)})
    matches, _ = ac.search(haystack)
    got = sorted((pos, rid) for pos, rid in matches)
    expected = []
    for i, needle in enumerate(needles):
        start = 0
        while True:
            index = haystack.find(needle, start)
            if index < 0:
                break
            expected.append((index + len(needle), f"r{i}"))
            start = index + 1
    assert got == sorted(expected)


@settings(max_examples=20, deadline=None)
@given(
    haystack=st.binary(min_size=2, max_size=300),
    split=st.integers(min_value=0, max_value=300),
    needle=st.binary(min_size=1, max_size=6),
)
def test_property_streaming_equals_oneshot(haystack, split, needle):
    split = min(split, len(haystack))
    ac = AhoCorasick({"r": needle})
    oneshot, _ = ac.search(haystack)
    m1, state = ac.search(haystack[:split])
    m2, _ = ac.search(haystack[split:], state)
    streamed = m1 + [(pos + split, rid) for pos, rid in m2]
    assert streamed == oneshot


class TestDpiEngine:
    def make_engine(self):
        return DpiEngine(
            [
                DpiRule("alert-1", b"SECRET", DpiAction.ALERT),
                DpiRule("block-1", b"MALWARE", DpiAction.BLOCK),
            ]
        )

    def test_alert_forwards(self):
        engine = self.make_engine()
        verdict = engine.inspect("f", "c2s", b"a SECRET leaks")
        assert verdict.alerts == ["alert-1"]
        assert not verdict.block

    def test_block_rule_blocks(self):
        engine = self.make_engine()
        verdict = engine.inspect("f", "c2s", b"download MALWARE here")
        assert verdict.block

    def test_clean_traffic(self):
        engine = self.make_engine()
        verdict = engine.inspect("f", "c2s", b"nothing to see")
        assert verdict.clean and not verdict.block

    def test_per_flow_per_direction_state(self):
        engine = self.make_engine()
        engine.inspect("f1", "c2s", b"SEC")
        # Other flow/direction must not continue f1's partial match.
        assert engine.inspect("f2", "c2s", b"RET").clean
        assert engine.inspect("f1", "s2c", b"RET").clean
        # The original direction does.
        assert engine.inspect("f1", "c2s", b"RET").alerts == ["alert-1"]

    def test_end_flow_resets_state(self):
        engine = self.make_engine()
        engine.inspect("f", "c2s", b"SEC")
        engine.end_flow("f")
        assert engine.inspect("f", "c2s", b"RET").clean

    def test_counters(self):
        engine = self.make_engine()
        engine.inspect("f", "c2s", b"SECRET and MALWARE")
        assert engine.chunks_inspected == 1
        assert engine.bytes_inspected == 18
        assert engine.total_alerts == 2

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(MiddleboxError):
            DpiEngine(
                [DpiRule("x", b"a"), DpiRule("x", b"b")]
            )

    def test_empty_rules_rejected(self):
        with pytest.raises(MiddleboxError):
            DpiEngine([])


class TestFlowLifetime:
    """The flow-table regression suite: streaming state must not leak."""

    def make_engine(self, max_flows=4):
        return DpiEngine(
            [DpiRule("alert-1", b"SECRET", DpiAction.ALERT)],
            max_flows=max_flows,
        )

    def test_flow_table_bounded_by_max_flows(self):
        engine = self.make_engine(max_flows=4)
        for i in range(32):
            engine.inspect(f"f{i}", "c2s", b"data")
        assert engine.flow_count == 4
        assert engine.flows_evicted == 28

    def test_lru_eviction_keeps_recently_active_flows(self):
        engine = self.make_engine(max_flows=2)
        engine.inspect("old", "c2s", b"SEC")
        engine.inspect("hot", "c2s", b"SEC")
        engine.inspect("old", "c2s", b"")  # touch: old is now newest
        engine.inspect("new", "c2s", b"x")  # evicts hot, not old
        # old kept its partial-match state across the eviction...
        assert engine.inspect("old", "c2s", b"RET").alerts == ["alert-1"]
        # ...hot lost its state (fresh flow on return).
        engine.inspect("hot", "c2s", b"RET")
        assert engine.flows_evicted >= 1

    def test_end_flow_single_direction(self):
        engine = self.make_engine()
        engine.inspect("f", "c2s", b"SEC")
        engine.inspect("f", "s2c", b"SEC")
        engine.end_flow("f", "c2s")
        assert engine.inspect("f", "c2s", b"RET").clean
        assert engine.inspect("f", "s2c", b"RET").alerts == ["alert-1"]

    def test_end_flow_unknown_flow_is_noop(self):
        engine = self.make_engine()
        engine.end_flow("never-seen")
        engine.end_flow("never-seen", "c2s")
        assert engine.flow_count == 0

    def test_flow_count_tracks_ends(self):
        engine = self.make_engine()
        engine.inspect("a", "c2s", b"x")
        engine.inspect("a", "s2c", b"x")
        engine.inspect("b", "c2s", b"x")
        assert engine.flow_count == 3
        engine.end_flow("a")
        assert engine.flow_count == 1
        engine.end_flow("b", "c2s")
        assert engine.flow_count == 0

    def test_invalid_max_flows_rejected(self):
        with pytest.raises(MiddleboxError):
            DpiEngine([DpiRule("r", b"x")], max_flows=0)
