"""The seeded Snort-like corpus generator feeding A17 and epcstress."""

import pytest

from repro.errors import MiddleboxError
from repro.middlebox.dpi import DpiEngine, DpiRule, DpiAction
from repro.middlebox.rulegen import (
    generate_ruleset,
    rules_as_tuples,
    synthesize_traffic,
)


class TestRuleset:
    def test_deterministic_per_seed(self):
        assert generate_ruleset(64, seed=3) == generate_ruleset(64, seed=3)
        assert generate_ruleset(64, seed=3) != generate_ruleset(64, seed=4)

    def test_patterns_unique_and_bounded(self):
        rules = generate_ruleset(256, seed=0)
        patterns = [pattern for _, pattern, _ in rules]
        assert len(set(patterns)) == len(patterns) == 256
        assert all(4 <= len(p) <= 32 for p in patterns)

    def test_rule_ids_sort_in_generation_order(self):
        rules = generate_ruleset(128, seed=1)
        ids = [rule_id for rule_id, _, _ in rules]
        assert ids == sorted(ids)

    def test_block_fraction_interleaved(self):
        rules = generate_ruleset(200, seed=0, block_fraction=0.02)
        blocks = [r for r in rules if r[2] == "block"]
        assert len(blocks) == 4  # every 50th rule
        assert all(a in ("alert", "block") for _, _, a in rules)

    def test_shared_prefixes_exist(self):
        # The stems must actually produce trie fan-out: many rules
        # sharing a first byte, not 256 disjoint chains.
        rules = generate_ruleset(256, seed=0)
        first_bytes = {pattern[0] for _, pattern, _ in rules}
        assert len(first_bytes) < 64

    def test_rejects_empty_request(self):
        with pytest.raises(MiddleboxError):
            generate_ruleset(0)

    def test_round_trips_through_the_engine_rule_form(self):
        rules = generate_ruleset(32, seed=0)
        objects = [DpiRule(i, p, DpiAction(a)) for i, p, a in rules]
        DpiEngine(objects)  # loads without duplicate-id complaints
        assert rules_as_tuples(objects) == rules


class TestTraffic:
    def test_deterministic_per_seed(self):
        rules = generate_ruleset(32, seed=0)
        a = synthesize_traffic(rules, 16, seed=5)
        b = synthesize_traffic(rules, 16, seed=5)
        assert a == b
        assert a != synthesize_traffic(rules, 16, seed=6)

    def test_record_shape(self):
        rules = generate_ruleset(8, seed=0)
        records = synthesize_traffic(rules, 10, record_len=128)
        assert len(records) == 10
        assert all(len(r) == 128 for r in records)

    def test_hit_rate_embeds_real_signatures(self):
        rules = generate_ruleset(64, seed=0)
        records = synthesize_traffic(
            rules, 200, record_len=256, hit_rate=0.5, seed=0
        )
        hits = sum(
            1
            for record in records
            if any(pattern in record for _, pattern, _ in rules)
        )
        # ~50% of 200 records carry an embedded signature; clean
        # records are overwhelmingly unlikely to contain one by chance.
        assert 60 <= hits <= 140

    def test_zero_hit_rate_scans_clean(self):
        rules = generate_ruleset(64, seed=0)
        records = synthesize_traffic(
            rules, 50, record_len=256, hit_rate=0.0, seed=0
        )
        assert not any(
            pattern in record
            for record in records
            for _, pattern, _ in rules
        )

    def test_rejects_empty_request(self):
        with pytest.raises(MiddleboxError):
            synthesize_traffic([], 0)
