"""DPI-conformance differential suite (the compiled-engine contract).

Hypothesis generates random rulesets over a deliberately tiny alphabet
(so patterns overlap, share prefixes, and nest — the shapes where
Aho-Corasick implementations disagree) plus chunked multi-flow record
streams, and runs each case through BOTH engines:

* the frozen dict walker (:mod:`repro.middlebox.dpi_reference`) — the
  oracle, byte-for-byte the pre-rewrite implementation;
* the compiled flat-table engine (:mod:`repro.middlebox.dpi`) with
  both row layouts.

The contract asserted for every case:

1. **identical verdicts** — block flag and the alert list (same rules,
   same order) for every record of every flow;
2. **identical integer cost counters** — both engines run under their
   own ambient :class:`CostAccountant` in the same enclave domain, and
   the full counter dict must match integer-for-integer (the modeled
   scan charge is a pure function of the input, never of the engine);
3. **streaming equivalence** — the same bytes split differently across
   records at the automaton level must yield the same matches.

A failing case is dumped to ``conformance-failures/`` as JSON so the
nightly big-budget job (and a human) can replay it.  Example budget:
``REPRO_CONFORMANCE_EXAMPLES`` (default 25 for tier-1; the ``slow``
sweep uses ``REPRO_CONFORMANCE_EXAMPLES_NIGHTLY``, default 500).
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import DEFAULT_MODEL, CostAccountant
from repro.cost import context as cost_context
from repro.middlebox.dpi import AhoCorasick, DpiAction, DpiEngine, DpiRule
from repro.middlebox.dpi_reference import (
    ReferenceAhoCorasick,
    ReferenceDpiEngine,
)

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))
NIGHTLY_EXAMPLES = int(
    os.environ.get("REPRO_CONFORMANCE_EXAMPLES_NIGHTLY", "500")
)
FAILURE_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                           "conformance-failures")

ENCLAVE_DOMAIN = "enclave:dpi-conformance"

# Tiny alphabet => dense overlaps, shared prefixes, nested patterns.
_pattern = st.binary(min_size=1, max_size=6).map(
    lambda b: bytes(x % 4 for x in b)
)
_ruleset = st.dictionaries(
    keys=st.sampled_from([f"r{i}" for i in range(8)]),
    values=st.tuples(_pattern, st.sampled_from(["alert", "block"])),
    min_size=1,
    max_size=6,
)
_record = st.binary(min_size=0, max_size=40).map(
    lambda b: bytes(x % 4 for x in b)
)
# A stream: (flow index, direction, record) triples.
_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["c2s", "s2c"]),
        _record,
    ),
    min_size=1,
    max_size=20,
)


def _rules(ruleset):
    return [
        DpiRule(rule_id, pattern, DpiAction(action))
        for rule_id, (pattern, action) in sorted(ruleset.items())
    ]


def _run_engine(engine_cls, ruleset, stream, **kwargs):
    """One arm: inspect the whole stream under a fresh accountant."""
    engine = engine_cls(_rules(ruleset), **kwargs)
    accountant = CostAccountant("dpi-conf")
    verdicts = []
    with cost_context.use_accountant(accountant, DEFAULT_MODEL):
        with accountant.attribute(ENCLAVE_DOMAIN):
            for flow, direction, record in stream:
                verdict = engine.inspect(f"flow-{flow}", direction, record)
                verdicts.append((verdict.block, tuple(verdict.alerts)))
    counters = {
        domain: counter.as_dict()
        for domain, counter in accountant.snapshot().items()
    }
    return verdicts, counters


def _check_conformance(ruleset, stream):
    ref_verdicts, ref_counters = _run_engine(
        ReferenceDpiEngine, ruleset, stream
    )
    for layout in ("hot-first", "insertion"):
        verdicts, counters = _run_engine(
            DpiEngine, ruleset, stream, layout=layout
        )
        assert verdicts == ref_verdicts, f"verdicts diverged ({layout})"
        assert counters == ref_counters, f"cost counters diverged ({layout})"


def _dump_failure(ruleset, stream, error):
    os.makedirs(FAILURE_DIR, exist_ok=True)
    doc = {
        "ruleset": {
            rule_id: [pattern.hex(), action]
            for rule_id, (pattern, action) in sorted(ruleset.items())
        },
        "stream": [[flow, direction, record.hex()]
                   for flow, direction, record in stream],
        "error": str(error),
    }
    blob = json.dumps(doc, sort_keys=True, indent=2)
    digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
    path = os.path.join(FAILURE_DIR, f"dpi-{digest}.json")
    with open(path, "w") as fh:
        fh.write(blob + "\n")
    return path


def _differential(ruleset, stream):
    try:
        _check_conformance(ruleset, stream)
    except AssertionError as exc:
        path = _dump_failure(ruleset, stream, exc)
        raise AssertionError(
            f"DPI conformance failure (case dumped to {path}): {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# The suites
# ---------------------------------------------------------------------------


@settings(max_examples=EXAMPLES, deadline=None)
@given(ruleset=_ruleset, stream=_stream)
def test_conformance_random_streams(ruleset, stream):
    _differential(ruleset, stream)


@pytest.mark.slow
@settings(max_examples=NIGHTLY_EXAMPLES, deadline=None)
@given(ruleset=_ruleset, stream=_stream)
def test_conformance_big_budget(ruleset, stream):
    """The nightly sweep: same property, 20x the example budget."""
    _differential(ruleset, stream)


def test_replay_dumped_failures():
    """Any case previously dumped by a failing run must now pass."""
    if not os.path.isdir(FAILURE_DIR):
        pytest.skip("no conformance failures on record")
    dumps = sorted(
        name for name in os.listdir(FAILURE_DIR) if name.startswith("dpi-")
    )
    if not dumps:
        pytest.skip("no DPI conformance failures on record")
    for name in dumps:
        with open(os.path.join(FAILURE_DIR, name)) as fh:
            doc = json.load(fh)
        ruleset = {
            rule_id: (bytes.fromhex(pattern), action)
            for rule_id, (pattern, action) in doc["ruleset"].items()
        }
        stream = [
            (flow, direction, bytes.fromhex(record))
            for flow, direction, record in doc["stream"]
        ]
        _check_conformance(ruleset, stream)


# ---------------------------------------------------------------------------
# Deterministic corners (no hypothesis — always run)
# ---------------------------------------------------------------------------


class TestKnownCases:
    def test_nested_and_overlapping(self):
        _differential(
            {"r0": (b"\x00\x01", "alert"), "r1": (b"\x01", "alert"),
             "r2": (b"\x00\x01\x00", "block")},
            [(0, "c2s", b"\x00\x01\x00\x01\x00")],
        )

    def test_streaming_split_matches_whole(self):
        """Automaton level: arbitrary chunking never changes matches."""
        patterns = {"a": b"\x00\x01\x02", "b": b"\x01\x02", "c": b"\x02\x00"}
        data = bytes(x % 3 for x in range(64))
        whole_ref = ReferenceAhoCorasick(patterns)
        whole = AhoCorasick(patterns)
        expect_matches, _ = whole_ref.search(data)
        assert whole.search(data)[0] == expect_matches
        for split in (1, 3, 7, 63):
            ref_state = state = 0
            got_ref, got = [], []
            for at in range(0, len(data), split):
                chunk = data[at : at + split]
                matches, ref_state = whole_ref.search(chunk, ref_state)
                got_ref.extend(
                    (at + end, rid) for end, rid in matches
                )
                matches, state = whole.search(chunk, state)
                got.extend((at + end, rid) for end, rid in matches)
            assert got == got_ref == expect_matches

    def test_block_rule_same_record_index(self):
        stream = [(0, "c2s", b"\x00" * 5), (0, "c2s", b"\x03\x03"),
                  (1, "s2c", b"\x03\x03")]
        _differential({"kill": (b"\x03\x03", "block")}, stream)

    def test_alert_order_is_rule_sorted_per_position(self):
        _differential(
            {"r9": (b"\x01", "alert"), "r1": (b"\x00\x01", "alert")},
            [(0, "c2s", b"\x00\x01\x01")],
        )

    def test_cost_is_engine_independent_with_enclave_factor(self):
        """The enclave execution factor applies identically to both."""
        ruleset = {"r0": (b"\x00\x01", "alert")}
        stream = [(0, "c2s", bytes(x % 4 for x in range(100)))]
        _, ref_counters = _run_engine(ReferenceDpiEngine, ruleset, stream)
        _, counters = _run_engine(DpiEngine, ruleset, stream)
        assert counters == ref_counters
        assert any(
            domain.startswith("enclave:") for domain in counters
        )
