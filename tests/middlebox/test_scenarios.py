"""Middlebox integration scenarios (paper Section 3.3)."""

import pytest

from repro.middlebox.scenarios import MiddleboxScenario


class TestUnilateralInspection:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = MiddleboxScenario(
            n_middleboxes=1, rules=[("r1", b"SECRET", "alert")]
        )
        return scenario.run([b"contains SECRET data", b"clean traffic"])

    def test_traffic_delivered(self, result):
        assert result.replies == [
            b"OK:contains SECRET data",
            b"OK:clean traffic",
        ]

    def test_alerts_fired_inside_enclave(self, result):
        # Request and its echo both carry the token: 2 alerts.
        assert result.stats["mbox0"]["alerts"] == 2

    def test_one_attestation_per_middlebox(self, result):
        assert result.attestations == 1

    def test_provisioned_after_attestation(self, result):
        assert result.provisioned == ["mbox0"]

    def test_data_records_inspected_handshake_opaque(self, result):
        stats = result.stats["mbox0"]
        assert stats["inspected"] == 4   # 2 requests + 2 replies
        assert stats["opaque"] == 4      # 4 handshake messages


class TestChain:
    def test_chain_of_three_inspects_at_each_hop(self):
        scenario = MiddleboxScenario(
            n_middleboxes=3, rules=[("r1", b"TOKEN", "alert")]
        )
        result = scenario.run([b"a TOKEN b"])
        assert result.replies == [b"OK:a TOKEN b"]
        assert result.attestations == 3  # Table 3: one per in-path box
        for name in ("mbox0", "mbox1", "mbox2"):
            assert result.stats[name]["alerts"] == 2, name


class TestBlocking:
    def test_block_rule_kills_flow(self):
        scenario = MiddleboxScenario(
            n_middleboxes=1, rules=[("kill", b"MALWARE", "block")]
        )
        result = scenario.run([b"fine", b"MALWARE payload", b"never sent"])
        assert result.replies == [b"OK:fine"]
        assert result.blocked
        assert result.stats["mbox0"]["blocked"] == 1


class TestWithoutProvisioning:
    def test_traffic_opaque_and_delivered(self):
        scenario = MiddleboxScenario(
            n_middleboxes=1, rules=[("r1", b"SECRET", "alert")]
        )
        result = scenario.run([b"has SECRET inside"], provision=False)
        assert result.replies == [b"OK:has SECRET inside"]
        stats = result.stats["mbox0"]
        assert stats["inspected"] == 0
        assert stats["alerts"] == 0


class TestTamperedMiddlebox:
    def test_attestation_refuses_modified_build(self):
        scenario = MiddleboxScenario(n_middleboxes=1, tampered_boxes=(0,))
        result = scenario.run([b"private data"])
        assert result.attestation_failures == ["mbox0"]
        assert result.provisioned == []
        # Traffic still flows, but stays opaque to the rogue box.
        assert result.replies == [b"OK:private data"]
        assert result.stats["mbox0"]["inspected"] == 0

    def test_tampered_box_in_chain_gets_nothing_others_inspect(self):
        scenario = MiddleboxScenario(
            n_middleboxes=2,
            rules=[("r1", b"XYZ", "alert")],
            tampered_boxes=(1,),
        )
        result = scenario.run([b"XYZ here"])
        assert result.attestation_failures == ["mbox1"]
        assert result.provisioned == ["mbox0"]
        assert result.stats["mbox0"]["inspected"] == 2
        assert result.stats["mbox1"]["inspected"] == 0
        assert result.replies == [b"OK:XYZ here"]


class TestBilateralConsent:
    def test_both_endpoints_required(self):
        scenario = MiddleboxScenario(
            n_middleboxes=1, rules=[("r1", b"S", "alert")], bilateral=True
        )
        result = scenario.run([b"S"])
        # Provisioning acks: the client's alone does not enable
        # inspection; the server's completes the pair.
        assert result.provisioned == ["mbox0"]  # enabled only after both
        consents = scenario.middleboxes[0].enclave.ecall("flow_consents", "client")
        assert consents == ["client", "server"]
        assert result.stats["mbox0"]["inspected"] == 2


class TestFlowLifecycle:
    """Connection closes must reach the enclave's DPI flow table."""

    def test_block_teardown_drains_flow_state(self):
        scenario = MiddleboxScenario(
            n_middleboxes=1,
            rules=[("kill", b"DROP-ME", "block")],
            seed=b"flow-block",
        )
        result = scenario.run([b"ok", b"please DROP-ME", b"after"])
        assert result.blocked
        telemetry = scenario.middleboxes[0].enclave.ecall("dpi_telemetry")
        assert telemetry["flows"] == 0

    def test_live_connections_hold_exactly_their_flow_state(self):
        scenario = MiddleboxScenario(n_middleboxes=2, seed=b"flow-live")
        scenario.run([b"one", b"two", b"three"])
        for box in scenario.middleboxes:
            telemetry = box.enclave.ecall("dpi_telemetry")
            # One still-open connection, two directions — no leak, no
            # unbounded growth, nothing evicted by the LRU bound.
            assert telemetry["flows"] == 2
            assert telemetry["flows_evicted"] == 0

    def test_epc_dpi_scenario_matches_plain_results(self):
        payloads = [b"hello", b"SECRET-TOKEN here", b"bye"]
        plain = MiddleboxScenario(n_middleboxes=1, seed=b"epc-knob").run(
            payloads
        )
        paged = MiddleboxScenario(
            n_middleboxes=1, seed=b"epc-knob", epc_dpi=True
        ).run(payloads)
        assert paged.replies == plain.replies
        assert paged.alerts == plain.alerts
        assert paged.stats == plain.stats

    def test_epc_dpi_small_frames_pages_on_the_scan_path(self):
        from repro.middlebox.rulegen import generate_ruleset

        scenario = MiddleboxScenario(
            n_middleboxes=1,
            rules=generate_ruleset(96, seed=7),
            seed=b"epc-page",
            epc_dpi=True,
            epc_frames=96,
        )
        result = scenario.run([b"x" * 200, b"y" * 200])
        assert result.replies  # traffic still flows, just slower
        telemetry = scenario.middleboxes[0].enclave.ecall("dpi_telemetry")
        assert telemetry["table_pages"] > 96
        assert telemetry["reloads"] > 0
        assert telemetry["aex_events"] > 0
