"""Mutual intra-attestation (paper Section 2.2, EREPORT/EGETKEY)."""

import pytest

from tests.fixtures import make_author_key

from repro.crypto.drbg import Rng

from repro.errors import AttestationError
from repro.sgx.local_attestation import (
    LocalAttestationPartyProgram,
    run_local_attestation,
)
from repro.sgx.platform import SgxPlatform


class ServiceProgram(LocalAttestationPartyProgram):
    def serve(self):
        return "service"


class KeyStoreProgram(LocalAttestationPartyProgram):
    def lookup(self):
        return "keystore"


@pytest.fixture()
def platform():
    return SgxPlatform("la-host", rng=Rng(b"local-attest"))


@pytest.fixture(scope="module")
def author():
    return make_author_key(b"la-author")


class TestLocalAttestation:
    def test_mutual_attestation_on_same_platform(self, platform, author):
        a = platform.load_enclave(ServiceProgram(), author_key=author, name="svc")
        b = platform.load_enclave(KeyStoreProgram(), author_key=author, name="ks")
        seen_b, seen_a = run_local_attestation(a, b, b"\x11" * 32)
        assert seen_b.mrenclave == b.identity.mrenclave
        assert seen_a.mrenclave == a.identity.mrenclave
        assert a.ecall("la_peer").mrenclave == b.identity.mrenclave

    def test_cross_platform_report_rejected(self, author):
        """Reports from a different machine fail the MAC check: the
        report key derives from a different device secret."""
        host1 = SgxPlatform("host1", rng=Rng(b"h1"))
        host2 = SgxPlatform("host2", rng=Rng(b"h2"))
        a = host1.load_enclave(ServiceProgram(), author_key=author, name="svc")
        b = host2.load_enclave(KeyStoreProgram(), author_key=author, name="ks")
        nonce = b"\x22" * 32
        report_a = a.ecall("la_report", b.identity.mrenclave, nonce)
        with pytest.raises(AttestationError, match="MAC"):
            b.ecall("la_verify", report_a, nonce)

    def test_report_for_wrong_target_rejected(self, platform, author):
        """A REPORT destined for enclave C cannot be verified by B."""
        a = platform.load_enclave(ServiceProgram(), author_key=author, name="svc")
        b = platform.load_enclave(KeyStoreProgram(), author_key=author, name="ks")
        nonce = b"\x33" * 32
        report_for_other = a.ecall("la_report", b"\x00" * 32, nonce)
        with pytest.raises(AttestationError, match="MAC"):
            b.ecall("la_verify", report_for_other, nonce)

    def test_nonce_binding(self, platform, author):
        a = platform.load_enclave(ServiceProgram(), author_key=author, name="svc")
        b = platform.load_enclave(KeyStoreProgram(), author_key=author, name="ks")
        report = a.ecall("la_report", b.identity.mrenclave, b"\x44" * 32)
        with pytest.raises(AttestationError, match="bind"):
            b.ecall("la_verify", report, b"\x55" * 32)

    def test_charges_sgx_instructions(self, platform, author):
        a = platform.load_enclave(ServiceProgram(), author_key=author, name="svc")
        b = platform.load_enclave(KeyStoreProgram(), author_key=author, name="ks")
        before = platform.accountant.snapshot()
        run_local_attestation(a, b, b"\x66" * 32)
        delta = platform.accountant.delta(before)
        # Each side: EREPORT + EGETKEY + ecall entries/exits.
        assert delta["enclave:svc"].sgx_instructions >= 6
        assert delta["enclave:ks"].sgx_instructions >= 6
