"""Platform + enclave lifecycle, isolation boundary, sealing, costs."""

import pytest

from repro.cost import UNTRUSTED
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import (
    EnclaveAccessError,
    MeasurementError,
    SealingError,
    SgxError,
)
from repro.sgx.keys import SealPolicy
from repro.sgx.platform import SgxPlatform
from repro.sgx.quoting import AttestationAuthority
from repro.sgx.runtime import EnclaveProgram
from repro.sgx.sigstruct import sign_enclave


class CounterProgram(EnclaveProgram):
    """Keeps a private counter; exposes increment/read ecalls."""

    def on_load(self, ctx):
        super().on_load(ctx)
        self._count = 0
        self._secret = b"in-enclave secret"

    def increment(self, by=1):
        self._count += by
        return self._count

    def read(self):
        return self._count

    def seal_secret(self, policy=SealPolicy.MRENCLAVE):
        return self.ctx.seal(self._secret, policy)

    def unseal_blob(self, blob):
        return self.ctx.unseal(blob)

    def allocate(self, n):
        return self.ctx.alloc(n)

    def _hidden(self):
        return "not callable from outside"


class OtherProgram(EnclaveProgram):
    def unseal_blob(self, blob):
        return self.ctx.unseal(blob)

    def seal_secret(self, policy=SealPolicy.MRSIGNER):
        return self.ctx.seal(b"other enclave data", policy)


# authority / platform / author_key fixtures come from tests/conftest.py


class TestLifecycle:
    def test_load_and_ecall(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        assert enclave.ecall("increment") == 1
        assert enclave.ecall("increment", by=5) == 6
        assert enclave.ecall("read") == 6

    def test_quoting_enclave_auto_loaded(self, platform):
        assert platform.quoting_enclave is not None
        assert platform.quoting_enclave.name == "quoting"

    def test_duplicate_name_rejected(self, platform, author_key):
        platform.load_enclave(CounterProgram(), author_key=author_key, name="x")
        with pytest.raises(SgxError, match="already in use"):
            platform.load_enclave(CounterProgram(), author_key=author_key, name="x")

    def test_needs_exactly_one_signing_input(self, platform, author_key):
        with pytest.raises(SgxError):
            platform.load_enclave(CounterProgram())
        sig = sign_enclave(author_key, b"\x00" * 32)
        with pytest.raises(SgxError):
            platform.load_enclave(
                CounterProgram(), author_key=author_key, sigstruct=sig
            )

    def test_einit_rejects_wrong_sigstruct(self, platform, author_key):
        # A SIGSTRUCT authored for different code must not launch this
        # program: the measured MRENCLAVE differs.
        sig_for_other = sign_enclave(author_key, b"\x42" * 32)
        with pytest.raises(MeasurementError, match="EINIT rejected"):
            platform.load_enclave(CounterProgram(), sigstruct=sig_for_other)

    def test_sigstruct_for_exact_code_launches(self, platform, author_key):
        # Author measures the code out-of-band, signs it, ships the
        # SIGSTRUCT; any platform can then launch it.
        probe = SgxPlatform("probe", rng=Rng(b"probe"))
        enclave = probe.load_enclave(CounterProgram(), author_key=author_key)
        sig = sign_enclave(
            author_key,
            enclave.identity.mrenclave,
            isv_prod_id=CounterProgram.ISV_PROD_ID,
            isv_svn=CounterProgram.ISV_SVN,
        )
        launched = platform.load_enclave(CounterProgram(), sigstruct=sig, name="signed")
        assert launched.identity.mrenclave == enclave.identity.mrenclave

    def test_destroy_prevents_ecalls(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        platform.destroy_enclave(enclave)
        assert enclave.destroyed
        with pytest.raises(SgxError, match="destroyed"):
            enclave.ecall("read")

    def test_find_enclave(self, platform, author_key):
        enclave = platform.load_enclave(
            CounterProgram(), author_key=author_key, name="findme"
        )
        assert platform.find_enclave("findme") is enclave
        with pytest.raises(SgxError):
            platform.find_enclave("ghost")


class TestIsolationBoundary:
    def test_program_object_unreachable(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        with pytest.raises(EnclaveAccessError):
            _ = enclave.program

    def test_private_methods_not_ecallable(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        with pytest.raises(EnclaveAccessError):
            enclave.ecall("_hidden")

    def test_unknown_ecall(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        with pytest.raises(SgxError, match="no ecall"):
            enclave.ecall("nonexistent")

    def test_os_sees_only_ciphertext(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        image = platform.os_read_enclave_memory(enclave)
        # The code page holds the program source; none of it leaks.
        assert b"in-enclave secret" not in image
        assert b"def increment" not in image

    def test_physical_tamper_faults_enclave_reads(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        platform.corrupt_enclave_page(enclave)
        index = enclave.page_indices[2]
        with pytest.raises(EnclaveAccessError, match="integrity"):
            platform.epc.read(enclave.enclave_id, index)

    def test_identical_programs_measure_equal_across_platforms(
        self, authority, author_key
    ):
        a = SgxPlatform("ma", authority, rng=Rng(b"ma"))
        b = SgxPlatform("mb", authority, rng=Rng(b"mb"))
        ea = a.load_enclave(CounterProgram(), author_key=author_key)
        eb = b.load_enclave(CounterProgram(), author_key=author_key)
        assert ea.identity.mrenclave == eb.identity.mrenclave

    def test_different_programs_measure_differently(self, platform, author_key):
        ea = platform.load_enclave(CounterProgram(), author_key=author_key, name="a")
        eb = platform.load_enclave(OtherProgram(), author_key=author_key, name="b")
        assert ea.identity.mrenclave != eb.identity.mrenclave


class TestSealing:
    def test_seal_unseal_roundtrip(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        blob = enclave.ecall("seal_secret")
        assert enclave.ecall("unseal_blob", blob) == b"in-enclave secret"

    def test_sealed_blob_hides_plaintext(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        blob = enclave.ecall("seal_secret")
        assert b"in-enclave secret" not in blob

    def test_mrenclave_policy_blocks_other_enclave(self, platform, author_key):
        a = platform.load_enclave(CounterProgram(), author_key=author_key, name="s1")
        b = platform.load_enclave(OtherProgram(), author_key=author_key, name="s2")
        blob = a.ecall("seal_secret", SealPolicy.MRENCLAVE)
        with pytest.raises(SealingError):
            b.ecall("unseal_blob", blob)

    def test_mrsigner_policy_allows_same_author(self, platform, author_key):
        a = platform.load_enclave(CounterProgram(), author_key=author_key, name="s3")
        b = platform.load_enclave(OtherProgram(), author_key=author_key, name="s4")
        blob = a.ecall("seal_secret", SealPolicy.MRSIGNER)
        assert b.ecall("unseal_blob", blob) == b"in-enclave secret"

    def test_mrsigner_policy_blocks_other_author(self, platform, author_key):
        other_author = generate_rsa_keypair(512, Rng(b"other-author"))
        a = platform.load_enclave(CounterProgram(), author_key=author_key, name="s5")
        b = platform.load_enclave(
            CounterProgram(), author_key=other_author, name="s6"
        )
        blob = a.ecall("seal_secret", SealPolicy.MRSIGNER)
        with pytest.raises(SealingError):
            b.ecall("unseal_blob", blob)

    def test_seal_key_survives_enclave_restart(self, platform, author_key):
        a = platform.load_enclave(CounterProgram(), author_key=author_key, name="s7")
        blob = a.ecall("seal_secret")
        platform.destroy_enclave(a)
        again = platform.load_enclave(
            CounterProgram(), author_key=author_key, name="s8"
        )
        assert again.ecall("unseal_blob", blob) == b"in-enclave secret"

    def test_corrupted_blob_rejected(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        blob = bytearray(enclave.ecall("seal_secret"))
        blob[-1] ^= 0xFF
        with pytest.raises(SealingError):
            enclave.ecall("unseal_blob", bytes(blob))


class TestCostAttribution:
    def test_ecall_charges_enclave_domain(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        before = platform.accountant.snapshot()
        enclave.ecall("increment")
        delta = platform.accountant.delta(before)
        domain = delta[enclave.domain]
        assert domain.sgx_instructions >= 2  # EENTER + EEXIT
        assert domain.enclave_crossings == 1

    def test_alloc_charges_and_grows(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        before = platform.accountant.snapshot()
        enclave.ecall("allocate", 10_000)  # > one page: heap must grow
        delta = platform.accountant.delta(before)
        domain = delta[enclave.domain]
        assert domain.allocations == 1
        # Growth: EACCEPT (+EEXIT/ERESUME) beyond the plain ecall pair.
        assert domain.sgx_instructions > 2

    def test_small_alloc_does_not_grow(self, platform, author_key):
        enclave = platform.load_enclave(CounterProgram(), author_key=author_key)
        enclave.ecall("allocate", 16)
        before = platform.accountant.snapshot()
        enclave.ecall("allocate", 16)
        delta = platform.accountant.delta(before)
        assert delta[enclave.domain].sgx_instructions == 2  # just EENTER/EEXIT
