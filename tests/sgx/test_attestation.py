"""Local and remote attestation end-to-end."""

import pytest

from repro.crypto.drbg import Rng
from repro.crypto.modes import CtrStream
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import AttestationError
from repro.sgx.attestation import (
    AttestationChallengerProgram,
    AttestationConfig,
    AttestationTargetProgram,
    IdentityPolicy,
    SessionKeys,
    run_attestation,
)
from repro.sgx.measurement import EnclaveIdentity
from repro.sgx.platform import SgxPlatform
from repro.sgx.quoting import AttestationAuthority, Quote, verify_quote
from repro.sgx.report import Report, TargetInfo, create_report, verify_report_mac
from repro.sgx.keys import derive_report_key


# authority / author_key fixtures come from tests/conftest.py


def make_pair(authority, author_key, config=AttestationConfig(), policy=None):
    """Two platforms: a challenger enclave and a target enclave."""
    remote = SgxPlatform("remote", authority, rng=Rng(b"remote-host"))
    local = SgxPlatform("local", authority, rng=Rng(b"local-host"))
    target = remote.load_enclave(
        AttestationTargetProgram(), author_key=author_key, name="target"
    )
    challenger = local.load_enclave(
        AttestationChallengerProgram(), author_key=author_key, name="challenger"
    )
    if policy is None:
        policy = IdentityPolicy.for_mrenclave(target.identity.mrenclave)
    info = authority.verification_info()
    challenger.ecall("configure_attestation", info, policy, config)
    target.ecall("configure_attestation", info, policy)
    return local, remote, challenger, target


class TestReports:
    def test_report_roundtrip(self):
        secret = b"\x07" * 32
        identity = EnclaveIdentity(mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32)
        target = TargetInfo(mrenclave=b"\x03" * 32)
        report = create_report(secret, identity, target, b"user data", b"\x04" * 32)
        key = derive_report_key(secret, target.mrenclave, report.key_id)
        verify_report_mac(report, key)  # must not raise

    def test_report_wrong_key_rejected(self):
        secret = b"\x07" * 32
        identity = EnclaveIdentity(mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32)
        target = TargetInfo(mrenclave=b"\x03" * 32)
        report = create_report(secret, identity, target, b"", b"\x04" * 32)
        wrong = derive_report_key(secret, b"\x05" * 32, report.key_id)
        with pytest.raises(AttestationError):
            verify_report_mac(report, wrong)

    def test_report_encode_decode(self):
        secret = b"\x07" * 32
        identity = EnclaveIdentity(mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32)
        report = create_report(
            secret, identity, TargetInfo(b"\x03" * 32), b"data", b"\x04" * 32
        )
        assert Report.decode(report.encode()) == report

    def test_report_data_too_long(self):
        identity = EnclaveIdentity(mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32)
        with pytest.raises(AttestationError):
            create_report(
                b"\x07" * 32, identity, TargetInfo(b"\x03" * 32), b"x" * 65, b"\x04" * 32
            )


class TestRemoteAttestation:
    def test_with_dh_establishes_matching_keys(self, authority, author_key):
        local, remote, challenger, target = make_pair(authority, author_key)
        n = run_attestation(challenger, target)
        assert n == 4
        assert challenger.ecall("is_complete")
        # Prove both sides hold the same keys: round-trip a secret.
        plaintext = b"policy: prefer customer routes"
        # Untrusted driver only ever sees ciphertext.
        ct = CtrStream(
            _challenger_keys(challenger).initiator_enc, b"echo-in"
        ).process(plaintext)
        reply = target.ecall("channel_echo", ct)
        out = CtrStream(
            _challenger_keys(challenger).responder_enc, b"echo-out"
        ).process(reply)
        assert out == plaintext[::-1]

    def test_without_dh_completes_in_two_messages(self, authority, author_key):
        local, remote, challenger, target = make_pair(
            authority, author_key, AttestationConfig(with_dh=False)
        )
        n = run_attestation(challenger, target)
        assert n == 2
        assert challenger.ecall("is_complete")

    def test_mutual_attestation(self, authority, author_key):
        remote = SgxPlatform("remote-m", authority, rng=Rng(b"remote-m"))
        local = SgxPlatform("local-m", authority, rng=Rng(b"local-m"))
        target = remote.load_enclave(
            AttestationTargetProgram(), author_key=author_key, name="target"
        )
        challenger = local.load_enclave(
            AttestationChallengerProgram(), author_key=author_key, name="challenger"
        )
        info = authority.verification_info()
        challenger.ecall(
            "configure_attestation",
            info,
            IdentityPolicy.for_mrenclave(target.identity.mrenclave),
            AttestationConfig(mutual=True),
        )
        target.ecall(
            "configure_attestation",
            info,
            IdentityPolicy.for_mrenclave(challenger.identity.mrenclave),
        )
        assert run_attestation(challenger, target) == 4
        assert challenger.ecall("is_complete")
        peer = challenger.ecall("peer_identity")
        assert peer.mrenclave == target.identity.mrenclave

    def test_mutual_requires_dh(self, authority, author_key):
        with pytest.raises(AttestationError):
            make_pair(
                authority,
                author_key,
                AttestationConfig(with_dh=False, mutual=True),
            )

    def test_modified_target_rejected_by_policy(self, authority, author_key):
        """A 'tampered' target program measures differently -> refused."""

        class TamperedTargetProgram(AttestationTargetProgram):
            def ra_challenge(self, data):
                # A snooping modification: logs challenges before answering.
                self._log = data
                return super().ra_challenge(data)

        remote = SgxPlatform("remote-t", authority, rng=Rng(b"remote-t"))
        local = SgxPlatform("local-t", authority, rng=Rng(b"local-t"))
        # The attacker self-signs; launch succeeds on their own box...
        target = remote.load_enclave(
            TamperedTargetProgram(), author_key=author_key, name="target"
        )
        challenger = local.load_enclave(
            AttestationChallengerProgram(), author_key=author_key, name="challenger"
        )
        # ...but the challenger pins the *audited* program's measurement.
        pristine = SgxPlatform("audit", authority, rng=Rng(b"audit"))
        audited = pristine.load_enclave(
            AttestationTargetProgram(), author_key=author_key, name="audited"
        )
        challenger.ecall(
            "configure_attestation",
            authority.verification_info(),
            IdentityPolicy.for_mrenclave(audited.identity.mrenclave),
            AttestationConfig(),
        )
        with pytest.raises(AttestationError, match="MRENCLAVE"):
            run_attestation(challenger, target)

    def test_revoked_platform_rejected(self, author_key):
        authority = AttestationAuthority(Rng(b"revocation-test"))
        local, remote, challenger, target = make_pair(authority, author_key)
        # Revoke the remote CPU, then refresh verification info.
        authority.revoke_platform(remote._member_key.keypair.y)
        challenger.ecall(
            "configure_attestation",
            authority.verification_info(),
            IdentityPolicy.accept_any(),
            AttestationConfig(),
        )
        with pytest.raises(AttestationError, match="revoked|invalid"):
            run_attestation(challenger, target)

    def test_quote_from_foreign_group_rejected(self, authority, author_key):
        rogue_authority = AttestationAuthority(Rng(b"rogue"))
        remote = SgxPlatform("rogue-host", rogue_authority, rng=Rng(b"rogue-host"))
        local = SgxPlatform("verifier", authority, rng=Rng(b"verifier"))
        target = remote.load_enclave(
            AttestationTargetProgram(), author_key=author_key, name="target"
        )
        challenger = local.load_enclave(
            AttestationChallengerProgram(), author_key=author_key, name="challenger"
        )
        challenger.ecall(
            "configure_attestation",
            authority.verification_info(),  # the real group's info
            IdentityPolicy.accept_any(),
            AttestationConfig(),
        )
        with pytest.raises(AttestationError):
            run_attestation(challenger, target)

    def test_tampered_quote_response_rejected(self, authority, author_key):
        local, remote, challenger, target = make_pair(
            authority, author_key, policy=IdentityPolicy.accept_any()
        )
        challenge = challenger.ecall("ra_start")
        response = bytearray(target.ecall("ra_challenge", challenge))
        response[10] ^= 0xFF  # flip a bit inside the quote
        with pytest.raises(Exception):
            challenger.ecall("ra_quote_response", bytes(response))

    def test_confirm_before_challenge_rejected(self, authority, author_key):
        local, remote, challenger, target = make_pair(authority, author_key)
        with pytest.raises(AttestationError):
            target.ecall("ra_confirm", b"\x00" * 64)


class TestSessionKeys:
    def test_derivation_is_deterministic(self):
        keys = SessionKeys.derive(b"shared", b"\x01" * 32)
        again = SessionKeys.derive(b"shared", b"\x01" * 32)
        assert keys == again

    def test_different_nonce_different_keys(self):
        a = SessionKeys.derive(b"shared", b"\x01" * 32)
        b = SessionKeys.derive(b"shared", b"\x02" * 32)
        assert a.initiator_enc != b.initiator_enc

    def test_directional_keys_differ(self):
        keys = SessionKeys.derive(b"shared", b"\x00" * 32)
        assert keys.initiator_enc != keys.responder_enc
        assert keys.initiator_mac != keys.responder_mac


class TestQuoteStructure:
    def test_quote_encode_decode(self, authority, author_key):
        remote = SgxPlatform("qhost", authority, rng=Rng(b"qhost"))
        target = remote.load_enclave(
            AttestationTargetProgram(), author_key=author_key, name="t"
        )
        challenger_rng_nonce = b"\x01" * 32
        from repro.sgx.attestation import _encode_challenge

        response = target.ecall(
            "ra_challenge",
            _encode_challenge(challenger_rng_nonce, AttestationConfig(with_dh=False)),
        )
        from repro.wire import Reader

        quote_bytes = Reader(response).varbytes()
        quote = Quote.decode(quote_bytes)
        assert quote.identity.mrenclave == target.identity.mrenclave
        verified = verify_quote(quote_bytes, authority.verification_info())
        assert verified == quote


def _challenger_keys(challenger_enclave):
    """Test-only peek at the challenger's derived session keys."""
    program = challenger_enclave._program  # bypassing the boundary: test fixture
    return program._attestor.session_keys
