"""Property tests for EPC page swap round-trips and tamper detection.

The paging_storm fault class and the EPC-resident DPI tables both lean
on one invariant: an EWB/ELDB round-trip is *lossless* (the MEE blob
in main memory decrypts back to the exact plaintext) and *tamper-
evident* (any bit flipped in the evicted blob faults on reload).
Hypothesis sweeps page contents, offsets, and flip positions.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EnclaveAccessError, SgxError
from repro.sgx.epc import PAGE_SIZE, EnclavePageCache, EpcPage, PageType

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))

_key = st.binary(min_size=16, max_size=32)
_content = st.binary(min_size=0, max_size=200)
_offset = st.integers(min_value=0, max_value=PAGE_SIZE - 200)


@settings(max_examples=EXAMPLES, deadline=None)
@given(key=_key, content=_content, offset=_offset)
def test_swap_round_trip_is_byte_identical(key, content, offset):
    page = EpcPage(7, key)
    page.write(offset, content)
    full_before = page.read(0, PAGE_SIZE)
    blob = page.swap_out()
    assert not page.resident
    assert page.read(0, PAGE_SIZE) == bytes(PAGE_SIZE), (
        "swap_out must drop the in-EPC plaintext"
    )
    page.swap_in(blob)
    assert page.resident
    assert page.read(0, PAGE_SIZE) == full_before
    assert page.read(offset, len(content)) == content


@settings(max_examples=EXAMPLES, deadline=None)
@given(key=_key, content=_content, flip=st.integers(min_value=0))
def test_any_bit_flip_in_swapped_blob_is_detected(key, content, flip):
    page = EpcPage(3, key)
    page.write(0, content)
    blob = bytearray(page.swap_out())
    blob[flip % len(blob)] ^= 1 << (flip % 8)
    with pytest.raises(EnclaveAccessError):
        page.swap_in(bytes(blob))
    # A poisoned page keeps faulting — the enclave cannot read through
    # a failed integrity check.
    with pytest.raises(EnclaveAccessError):
        page.read(0, 1)


@settings(max_examples=EXAMPLES, deadline=None)
@given(
    key=_key,
    contents=st.lists(_content, min_size=3, max_size=8),
    frames=st.integers(min_value=2, max_value=4),
)
def test_cache_eviction_reload_preserves_every_page(key, contents, frames):
    """Thrash a tiny paging cache; every page must read back intact."""
    epc = EnclavePageCache(key, frames=frames, allow_paging=True)
    indices = []
    for content in contents:
        page = epc.allocate(enclave_id=1, page_type=PageType.REG)
        epc.write(1, page.index, content)
        indices.append((page.index, content))
    for index, content in indices:
        assert epc.read(1, index, 0, len(content)) == content
    if len(contents) > frames:
        assert epc.evictions > 0
        assert epc.reloads > 0


@settings(max_examples=EXAMPLES, deadline=None)
@given(key=_key, contents=st.lists(_content, min_size=4, max_size=8))
def test_corrupt_swapped_page_always_detected(key, contents):
    epc = EnclavePageCache(key, frames=2, allow_paging=True)
    indices = []
    for content in contents:
        page = epc.allocate(enclave_id=1, page_type=PageType.REG)
        epc.write(1, page.index, content)
        indices.append(page.index)
    # With 2 frames and >= 4 pages, the first page is swapped out.
    victim = indices[0]
    epc.corrupt_swapped(victim)
    with pytest.raises(EnclaveAccessError):
        epc.read(1, victim, 0, 1)


def test_pressure_evict_counts_and_recovers():
    epc = EnclavePageCache(b"k" * 16, frames=8, allow_paging=True)
    payloads = {}
    for i in range(6):
        page = epc.allocate(enclave_id=1, page_type=PageType.REG)
        payloads[page.index] = bytes([i]) * 32
        epc.write(1, page.index, payloads[page.index])
    evicted = epc.pressure_evict(4)
    assert evicted == 4
    assert epc.resident_count == 2
    # Byte-identical recovery on the next access.
    for index, payload in payloads.items():
        assert epc.read(1, index, 0, len(payload)) == payload
    assert epc.reloads == 4


def test_pressure_evict_never_victimizes_secs_or_tcs():
    epc = EnclavePageCache(b"k" * 16, frames=8, allow_paging=True)
    epc.allocate(enclave_id=1, page_type=PageType.SECS)
    epc.allocate(enclave_id=1, page_type=PageType.TCS)
    reg = epc.allocate(enclave_id=1, page_type=PageType.REG)
    assert epc.pressure_evict(10) == 1
    assert not epc._pages[reg.index].resident
    assert epc.resident_count == 2


def test_corrupt_swapped_requires_evicted_page():
    epc = EnclavePageCache(b"k" * 16, frames=4, allow_paging=True)
    page = epc.allocate(enclave_id=1, page_type=PageType.REG)
    with pytest.raises(SgxError):
        epc.corrupt_swapped(page.index)
