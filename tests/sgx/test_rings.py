"""Property and mechanics suite for the async I/O rings (repro.sgx.rings).

The hypothesis property drives arbitrary interleavings of submit /
reap / reap_all / cancel / flush against the dumbest correct model
there is — a dict of entries walked in submission (seq) order — and
:class:`~repro.sgx.rings.RingPair` must never disagree: not on ticket
numbers, not on results, not on which cancels are refused, not on the
order ``reap_all`` returns completions.  Wrap-around falls out of tiny
ring capacities (slot index is seq mod capacity), and full-ring
backpressure out of the overflow service points the model mirrors.

The deterministic classes below pin the modeled costs against
``DEFAULT_MODEL`` field by field: submit/reap marshalling, the
adaptive spin -> sleep -> doorbell worker cycle, both backpressure
modes, and the worker-less fallback crossing that ablation A14 rests
on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.fixtures import make_author_key

from repro.cost import DEFAULT_MODEL
from repro.cost import context as cost_context
from repro.crypto.drbg import Rng
from repro.errors import SgxError
from repro.sgx import EnclaveProgram, RingPair, SgxPlatform


def _value_of(x: int) -> int:
    return x * 3 + 1


def _total(delta):
    """Sum a domain->Counter delta into one Counter."""
    total = None
    for counter in delta.values():
        if total is None:
            total = counter.copy()
        else:
            total += counter
    return total


def _make_ring(platform, **kwargs) -> RingPair:
    kwargs.setdefault("direction", "ecall")
    return RingPair(platform, enclave_domain="enclave:model", **kwargs)


@pytest.fixture()
def platform():
    return SgxPlatform("ring-host", rng=Rng(b"ring-test"))


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------


class _ModelRing:
    """Reference semantics: entries in a dict, serviced in seq order.

    Service points mirror the worker-less ring exactly: a submit that
    finds the ring full, any reap of a still-pending entry, reap_all
    with outstanding submissions, and flush — each drains *every*
    pending entry (the fallback crossing drains the whole ring).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries = {}
        self.order = []
        self.pending = []
        self.seq = 0

    def _service(self):
        for seq in self.pending:
            self.entries[seq]["serviced"] = True
        self.pending = []

    def submit(self, value: int) -> int:
        if len(self.pending) >= self.capacity:
            self._service()
        seq = self.seq
        self.seq += 1
        self.entries[seq] = {
            "value": _value_of(value),
            "serviced": False,
            "reaped": False,
            "cancelled": False,
        }
        self.order.append(seq)
        self.pending.append(seq)
        return seq

    def reap(self, seq: int):
        """The entry's value, or None where the real ring must raise."""
        entry = self.entries.get(seq)
        if entry is None or entry["cancelled"] or entry["reaped"]:
            return None
        if not entry["serviced"]:
            self._service()
        entry["reaped"] = True
        return entry["value"]

    def reap_all(self):
        self._service()
        out = []
        for seq in self.order:
            entry = self.entries[seq]
            if entry["reaped"] or entry["cancelled"]:
                continue
            entry["reaped"] = True
            out.append((seq, entry["value"]))
        return out

    def cancel(self, seq: int) -> bool:
        entry = self.entries.get(seq)
        if (
            entry is None
            or entry["serviced"]
            or entry["reaped"]
            or entry["cancelled"]
        ):
            return False
        entry["cancelled"] = True
        self.pending.remove(seq)
        return True

    def flush(self) -> int:
        count = len(self.pending)
        self._service()
        return count

    @property
    def depth(self) -> int:
        return len(self.pending)

    @property
    def in_flight(self) -> int:
        return sum(
            1
            for seq in self.order
            if not self.entries[seq]["reaped"]
            and not self.entries[seq]["cancelled"]
        )


# One program = a sequence of operations; indices address the k-th
# ticket ever issued (mod count), so cancels and reaps hit live,
# consumed and cancelled entries alike.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("reap"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("reap_all")),
        st.tuples(st.just("flush")),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops, capacity=st.integers(min_value=1, max_value=5))
def test_property_matches_model_worker_less(ops, capacity):
    """Worker-less (ecall-direction) ring vs the model, tiny capacities."""
    platform = SgxPlatform("ring-prop", rng=Rng(b"ring-prop"))
    ring = _make_ring(platform, capacity=capacity)
    model = _ModelRing(capacity)
    tickets = []
    for op in ops:
        if op[0] == "submit":
            real = ring.submit(_value_of, (op[1],))
            assert real == model.submit(op[1])
            tickets.append(real)
        elif op[0] in ("reap", "cancel"):
            if not tickets:
                continue
            ticket = tickets[op[1] % len(tickets)]
            if op[0] == "cancel":
                assert ring.cancel(ticket) == model.cancel(ticket)
            else:
                expected = model.reap(ticket)
                if expected is None:
                    with pytest.raises(SgxError):
                        ring.reap(ticket)
                else:
                    assert ring.reap(ticket) == expected
        elif op[0] == "reap_all":
            assert ring.reap_all() == model.reap_all()
        else:
            assert ring.flush() == model.flush()
        assert ring.depth == model.depth
        assert ring.in_flight == model.in_flight
    # Drain: the survivors come out in exact submission order.
    assert ring.reap_all() == model.reap_all()
    assert ring.in_flight == 0
    assert ring.stats.submitted == model.seq
    assert ring.stats.cancelled == sum(
        1 for e in model.entries.values() if e["cancelled"]
    )
    assert ring.stats.reaped == sum(
        1 for e in model.entries.values() if e["reaped"]
    )


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=99), max_size=40),
    harvest_depth=st.integers(min_value=1, max_value=10),
    spin_budget=st.integers(min_value=0, max_value=6),
)
def test_property_live_worker_preserves_order_and_books(
    values, harvest_depth, spin_budget
):
    """Ocall-direction ring with a live adaptive worker: completions
    come back in submission order whatever the harvest/spin geometry,
    and the spin/sleep/wakeup books stay consistent."""
    platform = SgxPlatform("ring-prop-w", rng=Rng(b"ring-prop-w"))
    ring = _make_ring(
        platform,
        direction="ocall",
        harvest_depth=harvest_depth,
        spin_budget=spin_budget,
        capacity=64,
    )
    assert ring.worker_running
    for value in values:
        ring.submit(_value_of, (value,))
    reaped = ring.reap_all()
    assert reaped == [(i, _value_of(v)) for i, v in enumerate(values)]
    stats = ring.stats
    assert stats.submitted == stats.completed == stats.reaped == len(values)
    assert stats.spins <= len(values)
    # Every sleep is entered through an exhausted budget and left
    # through exactly one doorbell (except a final sleep nothing woke).
    assert stats.wakeups in (stats.sleeps, stats.sleeps - 1)
    if spin_budget == 0:
        assert stats.spins == 0
    if len(values) >= harvest_depth:
        assert stats.polls >= 1
    # A live worker never needs the crossing fallback.
    assert stats.fallback_crossings == 0


# ---------------------------------------------------------------------------
# Construction and parameter validation
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_invalid_parameters_rejected(self, platform):
        with pytest.raises(SgxError):
            _make_ring(platform, direction="sideways")
        with pytest.raises(SgxError):
            _make_ring(platform, capacity=0)
        with pytest.raises(SgxError):
            _make_ring(platform, harvest_depth=0)
        with pytest.raises(SgxError):
            _make_ring(platform, spin_budget=-1)
        with pytest.raises(SgxError):
            _make_ring(platform, backpressure="panic")

    def test_worker_defaults_by_direction(self, platform):
        # Host cores are cheap: the ocall direction polls by default.
        assert _make_ring(platform, direction="ocall").worker_running
        # An in-enclave poller burns a TCS + core: ecall defaults off.
        assert not _make_ring(platform, direction="ecall").worker_running
        assert _make_ring(platform, direction="ecall", worker=True).worker_running


# ---------------------------------------------------------------------------
# Cost accounting against DEFAULT_MODEL
# ---------------------------------------------------------------------------


class TestCosts:
    def test_submit_charges_marshalling_no_crossing(self, platform):
        ring = _make_ring(platform)
        before = platform.accountant.snapshot()
        ring.submit(_value_of, (1,))
        total = _total(platform.accountant.delta(before))
        assert total.normal_instructions == DEFAULT_MODEL.ring_submit_normal
        assert total.enclave_crossings == 0
        assert total.sgx_instructions == 0
        assert total.switchless_calls == 1

    def test_worker_less_harvest_is_one_crossing(self, platform):
        ring = _make_ring(platform)  # ecall, no worker
        for i in range(6):
            ring.submit(_value_of, (i,))
        before = platform.accountant.snapshot()
        assert ring.reap_all() == [(i, _value_of(i)) for i in range(6)]
        delta = platform.accountant.delta(before)
        enclave = delta["enclave:model"]
        # One genuine crossing drains all six: EENTER + EEXIT, the
        # trampoline, and the ring-drain fallback path.
        assert enclave.enclave_crossings == 1
        assert enclave.sgx_instructions == 2
        assert enclave.normal_instructions == (
            DEFAULT_MODEL.trampoline_normal + DEFAULT_MODEL.ring_fallback_normal
        )
        # The completion reads land on the (untrusted) caller's side.
        assert delta[platform.untrusted_domain].normal_instructions == (
            6 * DEFAULT_MODEL.ring_reap_normal
        )
        assert ring.stats.fallback_crossings == 1

    def test_adaptive_worker_spin_sleep_doorbell_cycle(self, platform):
        ring = _make_ring(
            platform, direction="ocall", harvest_depth=8, spin_budget=4
        )
        for i in range(8):
            ring.submit(_value_of, (i,))
        stats = ring.stats
        # Submissions 1-4 each burn a spin credit; the 4th exhausts the
        # budget and the worker sleeps.  Submission 5 pays the doorbell
        # (resetting the budget), 5-7 spin again, and the 8th hits the
        # harvest depth: one poll pass drains all eight.
        assert stats.spins == 7
        assert stats.sleeps == 1
        assert stats.wakeups == 1
        assert stats.polls == 1
        assert stats.completed == 8
        assert stats.fallback_crossings == 0

    def test_doorbell_charges_wakeup_cost(self, platform):
        ring = _make_ring(
            platform, direction="ocall", harvest_depth=64, spin_budget=1
        )
        ring.submit(_value_of, (0,))  # exhausts the 1-spin budget
        assert ring.stats.sleeps == 1
        before = platform.accountant.snapshot()
        ring.submit(_value_of, (1,))
        total = _total(platform.accountant.delta(before))
        assert ring.stats.wakeups == 1
        assert total.normal_instructions == (
            DEFAULT_MODEL.ring_wakeup_normal
            + DEFAULT_MODEL.ring_submit_normal
            + DEFAULT_MODEL.ring_spin_normal
        )

    def test_worker_poll_charged_to_worker_domain(self, platform):
        ring = _make_ring(platform, direction="ocall", harvest_depth=2)
        before = platform.accountant.snapshot()
        ring.submit(_value_of, (0,))
        ring.submit(_value_of, (1,))  # hits harvest_depth: poll pass
        delta = platform.accountant.delta(before)
        assert ring.stats.polls == 1
        untrusted = delta[platform.untrusted_domain]
        # The ocall direction's worker lives on the host side.
        assert untrusted.normal_instructions >= DEFAULT_MODEL.ring_poll_normal
        assert untrusted.enclave_crossings == 0


# ---------------------------------------------------------------------------
# Backpressure (full submission ring)
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_block_mode_spins_without_crossing(self, platform):
        ring = _make_ring(
            platform,
            direction="ocall",
            capacity=2,
            harvest_depth=100,
            spin_budget=0,
            backpressure="block",
        )
        before = platform.accountant.snapshot()
        for i in range(5):
            ring.submit(_value_of, (i,))
        delta = platform.accountant.delta(before)
        assert all(c.enclave_crossings == 0 for c in delta.values())
        assert ring.stats.overflows == 2  # 3rd and 5th submit found it full
        assert ring.stats.overflow_spin == 4  # backlog of 2, twice
        assert ring.stats.fallback_crossings == 0
        assert ring.stats.max_depth == 2
        assert ring.reap_all() == [(i, _value_of(i)) for i in range(5)]

    def test_block_without_worker_degrades_to_crossing(self, platform):
        ring = _make_ring(platform, capacity=2, backpressure="block")
        assert not ring.worker_running
        for i in range(3):
            ring.submit(_value_of, (i,))
        # The blocked caller has no worker to wait on: the overflow
        # must degrade to the fallback crossing, not hang.
        assert ring.stats.overflows == 1
        assert ring.stats.fallback_crossings == 1
        assert ring.reap_all() == [(i, _value_of(i)) for i in range(3)]

    def test_fallback_mode_crossing_drains_everything(self, platform):
        ring = _make_ring(platform, capacity=3, backpressure="fallback")
        before = platform.accountant.snapshot()
        for i in range(7):  # overflows capacity 3 twice
            ring.submit(_value_of, (i,))
        delta = platform.accountant.delta(before)
        assert delta["enclave:model"].enclave_crossings == 2
        assert ring.stats.overflows == 2
        assert ring.stats.fallback_crossings == 2


# ---------------------------------------------------------------------------
# Worker lifecycle, validation hooks, error transport
# ---------------------------------------------------------------------------


class TestLifecycleAndHooks:
    def test_pause_then_resume_catches_up(self, platform):
        ring = _make_ring(platform, direction="ocall", harvest_depth=100)
        ring.pause_worker()
        ran = []
        ring.submit(ran.append, (1,))
        ring.submit(ran.append, (2,))
        assert ran == []
        ring.resume_worker()
        assert ran == [1, 2]
        assert ring.stats.polls == 1

    def test_paused_worker_service_pays_crossing(self, platform):
        ring = _make_ring(platform, direction="ocall", harvest_depth=100)
        ring.pause_worker()
        ring.submit(_value_of, (5,))
        assert ring.reap_all() == [(0, _value_of(5))]
        assert ring.stats.fallback_crossings == 1

    def test_validate_runs_on_callers_side_at_reap(self, platform):
        # The Iago discipline: untrusted results pass the enclave's
        # validator before any trusted code consumes them.
        ring = _make_ring(platform, direction="ocall")
        ticket = ring.submit(
            _value_of, (3,), validate=lambda v: v * 10
        )
        assert ring.reap(ticket) == _value_of(3) * 10

    def test_validate_rejection_propagates(self, platform):
        ring = _make_ring(platform, direction="ocall")

        def reject(_value):
            raise SgxError("iago: implausible ocall result")

        ticket = ring.submit(_value_of, (3,), validate=reject)
        with pytest.raises(SgxError, match="iago"):
            ring.reap(ticket)

    def test_typed_error_travels_completion_ring(self, platform):
        ring = _make_ring(platform)

        def boom():
            raise SgxError("payload failed")

        ticket = ring.submit(boom)
        ok = ring.submit(_value_of, (1,))
        with pytest.raises(SgxError, match="payload failed"):
            ring.reap(ticket)
        # The failure is per-entry: its neighbor reaps normally.
        assert ring.reap(ok) == _value_of(1)

    def test_flush_counts_and_is_idempotent(self, platform):
        ring = _make_ring(platform)
        ring.submit(_value_of, (1,))
        ring.submit(_value_of, (2,))
        assert ring.flush() == 2
        assert ring.flush() == 0


# ---------------------------------------------------------------------------
# Runtime integration: ocall_submit / ecall_submit plumbing
# ---------------------------------------------------------------------------


class RingWorkload(EnclaveProgram):
    def setup(self, **kwargs):
        self.ctx.enable_rings(**kwargs)

    def do_submits(self, n: int):
        log = self._log = []
        return [self.ctx.ocall_submit(log.append, i) for i in range(n)]

    def reap_everything(self):
        return self.ctx.ocall_reap_all()

    def log_len(self):
        return len(self._log)

    def double(self, x: int):
        return x * 2


class TestRuntimeIntegration:
    @pytest.fixture()
    def author(self):
        return make_author_key(b"ring-author")

    def test_ocall_submit_requires_enable(self, platform, author):
        enclave = platform.load_enclave(RingWorkload(), author_key=author)
        with pytest.raises(SgxError, match="enable_rings"):
            enclave.ecall("do_submits", 1)

    def test_ocall_submit_batch_zero_extra_crossings(self, platform, author):
        enclave = platform.load_enclave(RingWorkload(), author_key=author)
        enclave.ecall("setup")
        before = platform.accountant.snapshot()
        tickets = enclave.ecall("do_submits", 10)
        assert tickets == list(range(10))
        enclave.ecall("reap_everything")
        assert enclave.ecall("log_len") == 10
        delta = platform.accountant.delta(before)
        # The three ecalls themselves are the only crossings: the ten
        # async ocalls ride the rings with a live host worker.
        assert delta[enclave.domain].enclave_crossings == 3
        assert delta[enclave.domain].switchless_calls == 10

    def test_ecall_submit_requires_ring_attach(self, platform, author):
        enclave = platform.load_enclave(RingWorkload(), author_key=author)
        with pytest.raises(SgxError, match="enable_ring_ecalls"):
            enclave.ecall_submit("double", 2)

    def test_ecall_rings_amortize_crossings(self, platform, author):
        enclave = platform.load_enclave(RingWorkload(), author_key=author)
        enclave.enable_ring_ecalls(harvest_depth=4)
        before = platform.accountant.snapshot()
        tickets = [enclave.ecall_submit("double", i) for i in range(8)]
        results = enclave.ecall_reap_all()
        assert results == [(t, 2 * i) for i, t in enumerate(tickets)]
        delta = platform.accountant.delta(before)
        # 8 async ecalls, harvest drains on demand: 2 crossings total
        # (one fallback drain per reap_all-visible batch boundary),
        # never one per call.
        assert delta[enclave.domain].enclave_crossings < 8
        assert enclave.ring_ecalls.stats.submitted == 8

    def test_ecall_reap_single_ticket(self, platform, author):
        enclave = platform.load_enclave(RingWorkload(), author_key=author)
        enclave.enable_ring_ecalls()
        ticket = enclave.ecall_submit("double", 21)
        assert enclave.ecall_reap(ticket) == 42
