"""Measurement, SIGSTRUCT and software-identity tests."""

import pytest

from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import MeasurementError
from repro.sgx.measurement import EnclaveIdentity, MeasurementLog, program_code_bytes
from repro.sgx.runtime import EnclaveProgram
from repro.sgx.sigstruct import SigStruct, sign_enclave


class ProgramA(EnclaveProgram):
    def greet(self):
        return "hello"


class ProgramB(EnclaveProgram):
    def greet(self):
        return "tampered"


class PinnedProgram(EnclaveProgram):
    CODE_BYTES = b"pinned-code-v1"


class TestMeasurementLog:
    def test_same_operations_same_measurement(self):
        def build():
            log = MeasurementLog()
            log.ecreate(1, 8192)
            log.eadd(0, "reg", 7)
            log.eextend(0, b"code page")
            return log.finalize()

        assert build() == build()

    def test_different_content_different_measurement(self):
        a = MeasurementLog()
        a.ecreate(1, 8192)
        a.eextend(0, b"original")
        b = MeasurementLog()
        b.ecreate(1, 8192)
        b.eextend(0, b"modified")
        assert a.finalize() != b.finalize()

    def test_order_matters(self):
        a = MeasurementLog()
        a.eextend(0, b"x")
        a.eextend(4096, b"y")
        b = MeasurementLog()
        b.eextend(4096, b"y")
        b.eextend(0, b"x")
        assert a.finalize() != b.finalize()

    def test_extend_after_finalize_raises(self):
        log = MeasurementLog()
        log.finalize()
        with pytest.raises(RuntimeError):
            log.eextend(0, b"late")

    def test_finalize_is_idempotent(self):
        log = MeasurementLog()
        log.eextend(0, b"x")
        assert log.finalize() == log.finalize()


class TestProgramCodeBytes:
    def test_same_class_stable(self):
        assert program_code_bytes(ProgramA) == program_code_bytes(ProgramA)

    def test_modified_program_differs(self):
        assert program_code_bytes(ProgramA) != program_code_bytes(ProgramB)

    def test_explicit_code_bytes_override(self):
        assert program_code_bytes(PinnedProgram) == b"pinned-code-v1"

    def test_version_tag_changes_identity(self):
        assert program_code_bytes(ProgramA, "1") != program_code_bytes(ProgramA, "2")


class TestEnclaveIdentity:
    def test_encode_decode_roundtrip(self):
        identity = EnclaveIdentity(
            mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32, isv_prod_id=7, isv_svn=3
        )
        assert EnclaveIdentity.decode(identity.encode()) == identity

    def test_encoding_width(self):
        identity = EnclaveIdentity(mrenclave=b"\x00" * 32, mrsigner=b"\x00" * 32)
        assert len(identity.encode()) == 68


class TestSigStruct:
    @pytest.fixture(scope="class")
    def author(self):
        return generate_rsa_keypair(512, Rng(b"sigstruct-author"))

    def test_sign_and_verify(self, author):
        sig = sign_enclave(author, b"\xaa" * 32, isv_prod_id=1, isv_svn=2)
        sig.verify()
        assert sig.mrsigner == author.public_key().fingerprint()

    def test_tampered_hash_rejected(self, author):
        sig = sign_enclave(author, b"\xaa" * 32)
        import dataclasses

        forged = dataclasses.replace(sig, enclave_hash=b"\xbb" * 32)
        with pytest.raises(MeasurementError):
            forged.verify()

    def test_tampered_svn_rejected(self, author):
        sig = sign_enclave(author, b"\xaa" * 32, isv_svn=1)
        import dataclasses

        forged = dataclasses.replace(sig, isv_svn=99)
        with pytest.raises(MeasurementError):
            forged.verify()

    def test_encode_decode_roundtrip(self, author):
        sig = sign_enclave(author, b"\xcc" * 32, isv_prod_id=5, isv_svn=9)
        decoded = SigStruct.decode(sig.encode())
        assert decoded == sig
        decoded.verify()

    def test_bad_hash_length_rejected(self, author):
        with pytest.raises(MeasurementError):
            sign_enclave(author, b"short")
