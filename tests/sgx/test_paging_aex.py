"""EPC paging (EWB/ELDB) and asynchronous-exit modeling."""

import pytest

from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import EnclaveAccessError, SgxError
from repro.sgx import EnclaveProgram, SgxPlatform
from repro.sgx.epc import PAGE_SIZE, EnclavePageCache


MEE = b"\x42" * 32


class TestPagingMechanics:
    def test_allocation_beyond_frames_evicts_lru(self):
        epc = EnclavePageCache(MEE, frames=4, allow_paging=True)
        pages = [epc.allocate(1) for _ in range(4)]
        epc.write(1, pages[0].index, b"page zero data")
        for later in pages[1:]:
            epc.read(1, later.index)  # page 0 becomes least recent
        epc.allocate(1)
        assert epc.evictions == 1
        assert not pages[0].resident
        assert epc.resident_count == 4
        # The evicted page transparently reloads on access...
        assert epc.read(1, pages[0].index, 0, 14) == b"page zero data"
        assert epc.reloads == 1

    def test_lru_order_respected(self):
        epc = EnclavePageCache(MEE, frames=3, allow_paging=True)
        a = epc.allocate(1)
        b = epc.allocate(1)
        c = epc.allocate(1)
        epc.read(1, a.index)          # a becomes most recent
        epc.allocate(1)               # must evict b (LRU)
        assert a.resident
        assert not b.resident

    def test_secs_tcs_never_evicted(self):
        from repro.sgx.epc import PageType

        epc = EnclavePageCache(MEE, frames=3, allow_paging=True)
        epc.allocate(1, PageType.SECS)
        epc.allocate(1, PageType.TCS)
        reg = epc.allocate(1)
        epc.allocate(1)  # only the REG page is evictable
        assert not reg.resident

    def test_without_paging_exhaustion_still_raises(self):
        epc = EnclavePageCache(MEE, frames=2, allow_paging=False)
        epc.allocate(1)
        epc.allocate(1)
        with pytest.raises(SgxError, match="exhausted"):
            epc.allocate(1)

    def test_evicted_page_tamper_detected_on_reload(self):
        epc = EnclavePageCache(MEE, frames=2, allow_paging=True)
        victim = epc.allocate(1)
        epc.write(1, victim.index, b"secret state")
        epc.allocate(1)
        epc.allocate(1)  # victim evicted to main memory
        assert not victim.resident
        epc.corrupt_swapped(victim.index)
        with pytest.raises(EnclaveAccessError, match="integrity"):
            epc.read(1, victim.index)

    def test_swap_roundtrip_preserves_content(self):
        epc = EnclavePageCache(MEE, frames=2, allow_paging=True)
        page = epc.allocate(1)
        payload = bytes(range(256)) * 16  # full page
        epc.write(1, page.index, payload)
        epc.allocate(1)
        epc.allocate(1)  # evict
        assert epc.read(1, page.index, 0, PAGE_SIZE) == payload

    def test_paging_charges_costs(self):
        from repro.cost import CostAccountant
        from repro.cost import context as cost_context

        acct = CostAccountant()
        with cost_context.use_accountant(acct):
            epc = EnclavePageCache(MEE, frames=2, allow_paging=True)
            a = epc.allocate(1)
            epc.allocate(1)
            epc.allocate(1)  # evict a
            epc.read(1, a.index)  # reload a (evicting another)
        total = acct.total().normal_instructions
        from repro.cost import DEFAULT_MODEL

        assert total >= DEFAULT_MODEL.epc_evict_normal + DEFAULT_MODEL.epc_load_normal


class ScanProgram(EnclaveProgram):
    """Touches heap pages round-robin — the paging microbenchmark."""

    def prepare(self, n_pages: int) -> int:
        self.ctx.alloc(n_pages * PAGE_SIZE)
        return self.ctx.heap_page_count

    def scan(self, rounds: int) -> int:
        touched = 0
        for _ in range(rounds):
            for page in range(self.ctx.heap_page_count):
                self.ctx.write_heap(page, b"\xab" * 32, offset=0)
                assert self.ctx.read_heap(page, 0, 32) == b"\xab" * 32
                touched += 1
        return touched

    def touch(self, page: int) -> bytes:
        return self.ctx.read_heap(page, 0, 8)


class TestEnclaveHeapPaging:
    def make(self, frames):
        platform = SgxPlatform(
            f"paging-{frames}",
            rng=Rng(b"paging", str(frames)),
            epc_frames=frames,
            epc_paging=True,
        )
        author = generate_rsa_keypair(512, Rng(b"paging-author"))
        return platform, platform.load_enclave(ScanProgram(), author_key=author)

    def test_working_set_within_epc_no_thrash(self):
        platform, enclave = self.make(frames=64)
        enclave.ecall("prepare", 8)
        platform.epc.evictions = 0
        enclave.ecall("scan", 3)
        assert platform.epc.evictions == 0

    def test_working_set_beyond_epc_thrashes(self):
        platform, enclave = self.make(frames=12)
        pages = enclave.ecall("prepare", 16)  # > resident capacity
        assert pages == 16  # the initial page plus 15 grown
        before = platform.epc.evictions
        enclave.ecall("scan", 2)
        assert platform.epc.evictions > before
        assert platform.epc.reloads > 0

    def test_heap_page_bounds_checked(self):
        _, enclave = self.make(frames=64)
        enclave.ecall("prepare", 2)
        with pytest.raises(SgxError, match="out of range"):
            enclave.ecall("touch", 99)
        with pytest.raises(SgxError, match="negative"):
            enclave.ecall("prepare", -1)


class BusyProgram(EnclaveProgram):
    def burn(self, units: int) -> None:
        from repro.cost import context as cost_context

        cost_context.charge_normal(units)


class TestAsyncExits:
    def make(self, rate):
        platform = SgxPlatform(
            f"aex-{rate}", rng=Rng(b"aex", str(rate)), interrupt_rate=rate
        )
        author = generate_rsa_keypair(512, Rng(b"aex-author"))
        return platform, platform.load_enclave(BusyProgram(), author_key=author)

    def test_quiescent_platform_has_no_aex(self):
        platform, enclave = self.make(0.0)
        before = platform.accountant.snapshot()
        enclave.ecall("burn", 1_000_000)
        delta = platform.accountant.delta(before)[enclave.domain]
        assert delta.sgx_instructions == 2  # just EENTER/EEXIT

    def test_interrupts_charge_aex_pairs(self):
        rate = 1e-4
        platform, enclave = self.make(rate)
        before = platform.accountant.snapshot()
        enclave.ecall("burn", 1_000_000)
        delta = platform.accountant.delta(before)[enclave.domain]
        # ~100 AEX events -> ~200 extra SGX(U) instructions.
        assert 150 < delta.sgx_instructions - 2 < 250
        assert delta.enclave_crossings > 50

    def test_aex_overhead_scales_with_rate(self):
        costs = {}
        for rate in (0.0, 1e-5, 1e-4):
            platform, enclave = self.make(rate)
            before = platform.accountant.snapshot()
            enclave.ecall("burn", 2_000_000)
            delta = platform.accountant.delta(before)[enclave.domain]
            from repro.cost import DEFAULT_MODEL

            costs[rate] = DEFAULT_MODEL.cycles(
                delta.sgx_instructions, delta.normal_instructions
            )
        assert costs[0.0] < costs[1e-5] < costs[1e-4]
