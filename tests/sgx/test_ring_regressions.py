"""Regression pins for the ring pumps' wait loop (PR 2 and PR 6 bugs).

The ring pumps (``OnionRouterNode._link_pump_rings``,
``MiddleboxNode._pump_rings``) sit in exactly the two traps this repo
has already fixed once:

* **PR 2** — a ``MessageQueue`` delivery and a ``get(timeout=...)``
  timeout landing on the same timestamp: the earlier-scheduled event
  must win and a losing delivery must re-buffer its item.  The pumps
  linger with ``timeout=REAP_LINGER`` on *every* iteration with work
  in flight, so this tie fires constantly — a regression would
  silently drop cells/records.
* **PR 6** — ``CalendarQueue.cancel()`` after ``pop()`` must be a
  refused no-op.  Every linger timeout that *loses* (a message arrives
  first) cancels its already-popped-or-pending timer; the ring's own
  ``cancel()`` mirrors the same discipline for serviced tickets.

Both are pinned here against the ring shapes, on both kernels.
"""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import SgxError, SimTimeout
from repro.net import sim, sim_reference
from repro.net.sim import use_kernel
from repro.sgx import RingPair, SgxPlatform

#: Mirrors OnionRouterNode.REAP_LINGER / MiddleboxNode.REAP_LINGER.
REAP_LINGER = 1e-6


# ---------------------------------------------------------------------------
# PR 2: the linger timeout vs same-timestamp delivery tie
# ---------------------------------------------------------------------------


def _linger_tie(sim_module):
    """A put scheduled before a REAP_LINGER timeout at the same
    timestamp: the timeout still fires first (it entered the bucket
    earlier), and the losing delivery re-buffers the item for the next
    recv — exactly the PR 2 contract, at the pumps' tiny timeout."""
    simulator = sim_module.Simulator()
    queue = simulator.queue("linger-tie")
    outcomes = []

    def producer():
        yield simulator.sleep(REAP_LINGER)
        queue.put("cell")

    def pump():
        try:
            item = yield queue.get(timeout=REAP_LINGER)
            outcomes.append(("got", item))
        except SimTimeout:
            outcomes.append(("linger-expired",))
        # The pump's next blocking recv must still see the item.
        item = yield queue.get()
        outcomes.append(("drained", item))

    simulator.spawn(producer(), "producer")
    simulator.spawn(pump(), "pump")
    simulator.run()
    return outcomes


def test_linger_tie_fast_kernel():
    assert _linger_tie(sim) == [("linger-expired",), ("drained", "cell")]


def test_linger_tie_reference_kernel():
    assert _linger_tie(sim_reference) == [
        ("linger-expired",),
        ("drained", "cell"),
    ]


def _ring_pump_batches(sim_module, arrivals):
    """A miniature of the real ring pumps: blocking recv when idle,
    linger recv with work in flight, flush on timeout or at depth 4.
    Returns the batch partition — it must be deterministic and lose
    nothing, whatever the arrival timestamps."""
    simulator = sim_module.Simulator()
    queue = simulator.queue("pump")
    batches = []
    depth = 4

    def producer():
        now = 0.0
        for t, item in arrivals:
            if t > now:
                yield simulator.sleep(t - now)
                now = t
            queue.put(item)
        yield simulator.sleep(1.0)
        queue.put(None)  # EOF

    def pump():
        batch = []
        while True:
            if batch:
                try:
                    item = yield queue.get(timeout=REAP_LINGER)
                except SimTimeout:
                    batches.append(batch)
                    batch = []
                    continue
            else:
                item = yield queue.get()
            if item is None:
                if batch:
                    batches.append(batch)
                return
            batch.append(item)
            if len(batch) >= depth:
                batches.append(batch)
                batch = []

    simulator.spawn(producer(), "producer")
    simulator.spawn(pump(), "pump")
    simulator.run()
    return batches


_ARRIVAL_SHAPES = [
    # A same-instant burst coalesces into one batch under the linger.
    [(0.0, i) for i in range(3)],
    # A burst past the depth splits exactly at the depth boundary.
    [(0.0, i) for i in range(6)],
    # Spaced arrivals (beyond the linger) flush one by one.
    [(0.1 * i, i) for i in range(3)],
    # Burst, gap, burst.
    [(0.0, 0), (0.0, 1), (0.5, 2), (0.5, 3), (0.5, 4)],
]
_EXPECTED_BATCHES = [
    [[0, 1, 2]],
    [[0, 1, 2, 3], [4, 5]],
    [[0], [1], [2]],
    [[0, 1], [2, 3, 4]],
]


@pytest.mark.parametrize(
    "arrivals,expected", zip(_ARRIVAL_SHAPES, _EXPECTED_BATCHES)
)
def test_pump_batches_deterministic_fast_kernel(arrivals, expected):
    assert _ring_pump_batches(sim, arrivals) == expected


@pytest.mark.parametrize(
    "arrivals,expected", zip(_ARRIVAL_SHAPES, _EXPECTED_BATCHES)
)
def test_pump_batches_deterministic_reference_kernel(arrivals, expected):
    assert _ring_pump_batches(sim_reference, arrivals) == expected


# ---------------------------------------------------------------------------
# PR 6: cancel-after-service is a refused no-op
# ---------------------------------------------------------------------------


@pytest.fixture()
def ring():
    platform = SgxPlatform("ring-regr", rng=Rng(b"ring-regr"))
    return RingPair(platform, "ecall", "enclave:regr")


class TestCancelAfterService:
    def test_cancel_after_flush_refused(self, ring):
        ticket = ring.submit(lambda: 42)
        ring.flush()  # serviced: the completion exists
        assert ring.cancel(ticket) is False
        assert ring.stats.cancelled == 0
        assert ring.reap(ticket) == 42  # bookkeeping uncorrupted

    def test_cancel_after_reap_refused(self, ring):
        ticket = ring.submit(lambda: 1)
        ring.reap(ticket)
        assert ring.cancel(ticket) is False

    def test_double_cancel_refused(self, ring):
        ticket = ring.submit(lambda: 1)
        assert ring.cancel(ticket) is True
        assert ring.cancel(ticket) is False
        assert ring.stats.cancelled == 1

    def test_cancelled_entry_never_executes(self, ring):
        ran = []
        ticket = ring.submit(ran.append, (1,))
        keeper = ring.submit(ran.append, (2,))
        assert ring.cancel(ticket) is True
        assert ring.reap_all() == [(keeper, None)]
        assert ran == [2]
        with pytest.raises(SgxError, match="cancelled"):
            ring.reap(ticket)

    def test_unknown_ticket_rejected(self, ring):
        assert ring.cancel(999) is False
        with pytest.raises(SgxError, match="unknown"):
            ring.reap(999)


# ---------------------------------------------------------------------------
# End to end: the real middlebox ring pump on both kernels
# ---------------------------------------------------------------------------


class TestPumpCrossKernel:
    def _run(self):
        from repro.middlebox.scenarios import MiddleboxScenario

        scenario = MiddleboxScenario(
            n_middleboxes=1, seed=b"ring-kernels", rings=True, ring_depth=4
        )
        result = scenario.run([b"r%d" % i for i in range(6)])
        return result.replies, result.stats

    def test_ring_scenario_identical_on_both_kernels(self):
        # The linger loop leans on same-timestamp scheduling; the two
        # kernels must agree byte for byte or the pump is relying on
        # kernel-private ordering.
        fast = self._run()
        with use_kernel("reference"):
            reference = self._run()
        assert fast == reference
        assert fast[0] == [b"OK:r%d" % i for i in range(6)]
