"""Adversarial tests for the recv_packets Iago checks.

The OS is untrusted (paper Section 6): every value an ocall hands back
must be validated before enclave code touches it.  These tests play a
malicious receiver against both the ordinary crossing path and the
switchless worker path — the checks must hold identically on both,
since a compromised switchless worker is exactly as untrusted as a
compromised ocall target.
"""

import pytest

from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import SgxError
from repro.sgx import EnclaveProgram, SgxPlatform
from repro.sgx.runtime import EnclaveContext


class ReceiverProgram(EnclaveProgram):
    """Exposes the packet-receive path so tests can feed it attacks."""

    def setup_switchless(self) -> None:
        self.ctx.enable_switchless()

    def receive(self, receiver, switchless: bool = False):
        return self.ctx.recv_packets(receiver, switchless=switchless)


@pytest.fixture()
def enclave():
    platform = SgxPlatform("iago-host", rng=Rng(b"iago"))
    author = generate_rsa_keypair(512, Rng(b"iago-author"))
    enclave = platform.load_enclave(ReceiverProgram(), author_key=author)
    enclave.ecall("setup_switchless")
    return enclave


def _recv(enclave, receiver, switchless):
    return enclave.ecall("receive", receiver, switchless)


@pytest.fixture(params=[False, True], ids=["crossing", "switchless"])
def switchless(request):
    return request.param


class TestIagoChecks:
    def test_honest_receiver_passes(self, enclave, switchless):
        packets = _recv(enclave, lambda: [b"a", b"bb"], switchless)
        assert packets == [b"a", b"bb"]

    def test_bytearray_normalized_to_bytes(self, enclave, switchless):
        packets = _recv(enclave, lambda: [bytearray(b"xy")], switchless)
        assert packets == [b"xy"]
        assert all(type(p) is bytes for p in packets)

    def test_oversized_packet_rejected(self, enclave, switchless):
        huge = b"\x00" * (EnclaveContext.MAX_PACKET_BYTES + 1)
        with pytest.raises(SgxError, match="byte packet"):
            _recv(enclave, lambda: [huge], switchless)

    def test_packet_at_cap_accepted(self, enclave, switchless):
        exact = b"\x00" * EnclaveContext.MAX_PACKET_BYTES
        assert _recv(enclave, lambda: [exact], switchless) == [exact]

    def test_over_cap_batch_rejected(self, enclave, switchless):
        flood = [b"x"] * (EnclaveContext.MAX_PACKETS_PER_RECV + 1)
        with pytest.raises(SgxError, match="packets"):
            _recv(enclave, lambda: flood, switchless)

    def test_non_sequence_return_rejected(self, enclave, switchless):
        with pytest.raises(SgxError, match="non-sequence"):
            _recv(enclave, lambda: b"not-a-list", switchless)

    def test_generator_return_rejected(self, enclave, switchless):
        # A lazy iterable could run attacker code during enclave
        # iteration; only materialized sequences are accepted.
        with pytest.raises(SgxError, match="non-sequence"):
            _recv(enclave, lambda: (b"x" for _ in range(2)), switchless)

    def test_non_bytes_packet_rejected(self, enclave, switchless):
        with pytest.raises(SgxError, match="non-bytes"):
            _recv(enclave, lambda: [b"ok", "sneaky-str"], switchless)

    def test_none_return_rejected(self, enclave, switchless):
        with pytest.raises(SgxError, match="non-sequence"):
            _recv(enclave, lambda: None, switchless)


class TestSwitchlessWorkerResponses:
    def test_paused_worker_fallback_still_validates(self, enclave):
        # With the worker paused the call degrades to a real crossing —
        # the Iago checks must hold on that path too.
        enclave.ctx.switchless.pause_worker()
        huge = b"\x00" * (EnclaveContext.MAX_PACKET_BYTES + 1)
        with pytest.raises(SgxError, match="byte packet"):
            _recv(enclave, lambda: [huge], True)
        enclave.ctx.switchless.resume_worker()

    def test_queue_validate_hook_applies_to_call(self, enclave):
        # Directly exercise the queue API the runtime builds on.
        queue = enclave.ctx.switchless

        def tampering_worker():
            return "garbage"

        with pytest.raises(SgxError, match="non-sequence"):
            queue.call(
                tampering_worker,
                validate=enclave.ctx._validate_recv_packets,
            )
