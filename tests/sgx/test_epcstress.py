"""The A17 EPC working-set stress harness: determinism, schema, cliff."""

import json

import pytest

from repro.sgx.epcstress import (
    DEFAULT_FRAMES,
    MODES,
    epcstress_json,
    format_epcstress,
    run_epcstress,
    validate_epcstress,
)


@pytest.fixture(scope="module")
def smoke_doc():
    return run_epcstress(seed=0, smoke=True)


class TestReport:
    def test_schema_valid(self, smoke_doc):
        assert validate_epcstress(smoke_doc) == []

    def test_serialization_round_trips(self, smoke_doc):
        text = epcstress_json(smoke_doc)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(epcstress_json(smoke_doc))

    def test_every_mode_at_every_size(self, smoke_doc):
        cells = {(c["mode"], c["n_rules"]) for c in smoke_doc["grid"]}
        assert cells == {
            (mode, size) for mode in MODES for size in smoke_doc["sizes"]
        }

    def test_byte_identical_across_runs(self, smoke_doc):
        again = run_epcstress(seed=0, smoke=True)
        assert epcstress_json(smoke_doc) == epcstress_json(again)

    def test_seed_changes_the_traffic_not_the_shape(self, smoke_doc):
        other = run_epcstress(seed=1, smoke=True)
        assert validate_epcstress(other) == []
        assert epcstress_json(other) != epcstress_json(smoke_doc)
        # Same ruleset sizes -> same automata shapes either way.
        shapes = lambda doc: [  # noqa: E731
            (c["n_rules"], c["states"], c["table_pages"])
            for c in doc["grid"]
        ]
        assert {s[0] for s in shapes(other)} == {
            s[0] for s in shapes(smoke_doc)
        }

    def test_format_mentions_every_regime(self, smoke_doc):
        text = format_epcstress(smoke_doc)
        for mode in MODES:
            assert mode in text


class TestCliff:
    def test_sweep_crosses_the_boundary(self, smoke_doc):
        fits = [c["fits_epc"] for c in smoke_doc["grid"]]
        assert any(fits) and not all(fits)

    def test_fitting_working_sets_pay_zero_scan_paging(self, smoke_doc):
        for cell in smoke_doc["grid"]:
            if cell["fits_epc"]:
                assert cell["scan_reloads"] == 0
                assert cell["aex_events"] == 0

    def test_oversized_working_sets_page_and_storm(self, smoke_doc):
        over = [c for c in smoke_doc["grid"] if not c["fits_epc"]]
        assert over
        for cell in over:
            assert cell["scan_reloads"] > 0
            assert cell["aex_events"] > 0
            # Every reload is a modeled AEX resume on the scan path.
            assert cell["aex_events"] == cell["scan_reloads"]

    def test_paging_charges_grow_monotonically(self, smoke_doc):
        for mode in MODES:
            cells = sorted(
                (c for c in smoke_doc["grid"] if c["mode"] == mode),
                key=lambda c: c["table_pages"],
            )
            reloads = [c["scan_reloads"] for c in cells]
            assert reloads == sorted(reloads)

    def test_paging_dominates_cycles_past_the_cliff(self, smoke_doc):
        for mode in MODES:
            cells = {c["n_rules"]: c for c in smoke_doc["grid"]
                     if c["mode"] == mode}
            sizes = sorted(cells)
            fit, over = cells[sizes[0]], cells[sizes[-1]]
            assert not over["fits_epc"]
            assert over["cycles_per_byte"] > 5 * fit["cycles_per_byte"]

    def test_batching_regimes_cut_crossings_not_paging(self, smoke_doc):
        by_mode = {}
        for cell in smoke_doc["grid"]:
            if not cell["fits_epc"]:
                by_mode[cell["mode"]] = cell
        assert by_mode["batch"]["crossings"] < by_mode["ecall"]["crossings"]
        assert by_mode["rings"]["crossings"] < by_mode["ecall"]["crossings"]
        # The paging tax is orthogonal to the boundary regime.
        reloads = {c["scan_reloads"] for c in by_mode.values()}
        assert len(reloads) == 1


class TestValidation:
    def test_rejects_wrong_schema(self, smoke_doc):
        bad = dict(smoke_doc, schema="repro.other/1")
        assert any("schema" in p for p in validate_epcstress(bad))

    def test_rejects_missing_grid(self):
        assert validate_epcstress({"schema": "repro.epcstress/1"})

    def test_rejects_cliffless_sweep(self, smoke_doc):
        clipped = dict(
            smoke_doc,
            grid=[c for c in smoke_doc["grid"] if c["fits_epc"]],
        )
        assert any("boundary" in p for p in validate_epcstress(clipped))

    def test_rejects_paging_below_boundary(self, smoke_doc):
        doctored = json.loads(epcstress_json(smoke_doc))
        for cell in doctored["grid"]:
            if cell["fits_epc"]:
                cell["scan_reloads"] = 5
                break
        assert any("fits EPC" in p for p in validate_epcstress(doctored))

    def test_frames_knob_moves_the_cliff(self):
        roomy = run_epcstress(seed=0, smoke=True, frames=4 * DEFAULT_FRAMES)
        # With 4x the frames every smoke working set fits — that is a
        # validation failure by design (the sweep must show the cliff).
        assert all(c["fits_epc"] for c in roomy["grid"])
        assert any("boundary" in p for p in validate_epcstress(roomy))


class TestLayouts:
    def test_insertion_layout_also_valid_and_distinct(self):
        hot = run_epcstress(seed=0, smoke=True, layout="hot-first")
        ins = run_epcstress(seed=0, smoke=True, layout="insertion")
        assert validate_epcstress(ins) == []
        # Same shapes (states/pages), different page-touch behaviour.
        assert [c["table_pages"] for c in hot["grid"]] == [
            c["table_pages"] for c in ins["grid"]
        ]
        hot_touch = sum(c["pages_touched"] for c in hot["grid"])
        ins_touch = sum(c["pages_touched"] for c in ins["grid"])
        assert hot_touch != ins_touch

    def test_hot_first_touches_fewer_pages(self):
        """The optimization lever: BFS hot-rows-first packing keeps the
        scan working set denser than insertion order."""
        hot = run_epcstress(seed=0, smoke=True, layout="hot-first")
        ins = run_epcstress(seed=0, smoke=True, layout="insertion")
        assert sum(c["pages_touched"] for c in hot["grid"]) <= sum(
            c["pages_touched"] for c in ins["grid"]
        )
