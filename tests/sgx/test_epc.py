"""EPC / EPCM protection semantics."""

import pytest

from repro.errors import EnclaveAccessError, SgxError
from repro.sgx.epc import PAGE_SIZE, EnclavePageCache, PageType

MEE_KEY = b"\x11" * 32


@pytest.fixture()
def epc():
    return EnclavePageCache(mee_key=MEE_KEY, frames=8)


class TestAllocation:
    def test_allocate_assigns_owner(self, epc):
        page = epc.allocate(enclave_id=1)
        assert epc.entry(page.index).enclave_id == 1
        assert epc.entry(page.index).page_type is PageType.REG

    def test_free_frames_decrease(self, epc):
        assert epc.free_frames == 8
        epc.allocate(1)
        assert epc.free_frames == 7

    def test_exhaustion_raises(self, epc):
        for _ in range(8):
            epc.allocate(1)
        with pytest.raises(SgxError, match="exhausted"):
            epc.allocate(1)

    def test_free_enclave_pages(self, epc):
        epc.allocate(1)
        epc.allocate(1)
        epc.allocate(2)
        assert epc.free_enclave_pages(1) == 2
        assert epc.free_frames == 7

    def test_missing_entry_raises(self, epc):
        with pytest.raises(SgxError):
            epc.entry(99)


class TestAccessControl:
    def test_owner_can_read_write(self, epc):
        page = epc.allocate(1)
        epc.write(1, page.index, b"secret data")
        assert epc.read(1, page.index, 0, 11) == b"secret data"

    def test_other_enclave_denied(self, epc):
        page = epc.allocate(1)
        with pytest.raises(EnclaveAccessError):
            epc.read(2, page.index)
        with pytest.raises(EnclaveAccessError):
            epc.write(2, page.index, b"x")

    def test_write_to_readonly_page_denied(self, epc):
        page = epc.allocate(1)
        epc.entry(page.index).writable = False
        with pytest.raises(EnclaveAccessError):
            epc.write(1, page.index, b"x")

    def test_out_of_bounds_access(self, epc):
        page = epc.allocate(1)
        with pytest.raises(SgxError):
            epc.read(1, page.index, PAGE_SIZE - 1, 2)
        with pytest.raises(SgxError):
            epc.write(1, page.index, b"xx", PAGE_SIZE - 1)

    def test_pending_page_requires_eaccept(self, epc):
        page = epc.allocate(1, pending=True)
        with pytest.raises(EnclaveAccessError, match="pending"):
            epc.read(1, page.index)
        epc.accept_pending(1, page.index)
        epc.read(1, page.index)  # now fine

    def test_eaccept_by_wrong_enclave_denied(self, epc):
        page = epc.allocate(1, pending=True)
        with pytest.raises(EnclaveAccessError):
            epc.accept_pending(2, page.index)

    def test_eaccept_non_pending_raises(self, epc):
        page = epc.allocate(1)
        with pytest.raises(SgxError):
            epc.accept_pending(1, page.index)


class TestMemoryEncryption:
    def test_untrusted_view_is_ciphertext(self, epc):
        page = epc.allocate(1)
        secret = b"the enclave's private key material"
        epc.write(1, page.index, secret)
        image = epc.read_as_untrusted(page.index)
        assert secret not in image

    def test_untrusted_view_differs_across_versions(self, epc):
        page = epc.allocate(1)
        epc.write(1, page.index, b"v1")
        first = epc.read_as_untrusted(page.index)
        epc.write(1, page.index, b"v2")
        second = epc.read_as_untrusted(page.index)
        assert first != second

    def test_untrusted_read_of_missing_page(self, epc):
        with pytest.raises(SgxError):
            epc.read_as_untrusted(5)

    def test_tampering_faults_next_enclave_access(self, epc):
        page = epc.allocate(1)
        epc.write(1, page.index, b"data")
        epc.corrupt_page(page.index)
        with pytest.raises(EnclaveAccessError, match="integrity"):
            epc.read(1, page.index)
        with pytest.raises(EnclaveAccessError, match="integrity"):
            epc.write(1, page.index, b"more")

    def test_corrupt_missing_page(self, epc):
        with pytest.raises(SgxError):
            epc.corrupt_page(42)
