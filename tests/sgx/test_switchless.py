"""Tests for the switchless call-queue subsystem.

Covers the queue mechanics (slots, polling, fallback crossings), the
cost accounting it produces per domain, the runtime integration
(ocall / send_packets / recv_packets / ecall_switchless), adoption in
the routing deployment, and the heap-index construction fix.
"""

import pytest

from tests.fixtures import make_author_key

from repro.cost import DEFAULT_MODEL
from repro.crypto.drbg import Rng

from repro.errors import SgxError
from repro.sgx import EnclaveProgram, SgxPlatform, SwitchlessQueue
from repro.sgx.runtime import EnclaveContext


class WorkloadProgram(EnclaveProgram):
    def setup(self, capacity: int = 64, poll_interval: int = 8):
        self.ctx.enable_switchless(capacity=capacity, poll_interval=poll_interval)

    def do_ocalls(self, n: int, switchless: bool):
        seen = []
        for i in range(n):
            self.ctx.ocall(seen.append, i, switchless=switchless)
        return seen

    def do_send(self, packets, switchless: bool):
        return self.ctx.send_packets(lambda _p: None, packets, switchless=switchless)

    def do_recv(self, receiver, switchless: bool):
        return self.ctx.recv_packets(receiver, switchless=switchless)

    def flush(self):
        return self.ctx.switchless.flush()

    def bump(self, amount: int = 1):
        self._count = getattr(self, "_count", 0) + amount
        return self._count


@pytest.fixture()
def platform():
    return SgxPlatform("sw-host", rng=Rng(b"switchless-test"))


@pytest.fixture()
def author():
    return make_author_key(b"switchless-author")


@pytest.fixture()
def enclave(platform, author):
    enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
    enclave.ecall("setup")
    return enclave


def _domain_delta(platform, enclave, before):
    return platform.accountant.delta(before).get(enclave.domain)


class TestQueueMechanics:
    def test_invalid_parameters_rejected(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        with pytest.raises(SgxError):
            SwitchlessQueue(platform, "sideways", enclave.domain)
        with pytest.raises(SgxError):
            SwitchlessQueue(platform, "ocall", enclave.domain, capacity=0)
        with pytest.raises(SgxError):
            SwitchlessQueue(platform, "ocall", enclave.domain, poll_interval=0)

    def test_call_returns_result_with_zero_crossings(self, enclave, platform):
        before = platform.accountant.snapshot()
        queue = enclave.ctx.switchless
        assert queue.call(lambda a, b: a + b, (2, 3)) == 5
        delta = platform.accountant.delta(before)
        assert all(c.enclave_crossings == 0 for c in delta.values())
        assert all(c.sgx_instructions == 0 for c in delta.values())
        assert queue.stats.submitted == 1
        assert queue.stats.serviced == 1
        assert queue.stats.fallback_crossings == 0

    def test_post_drains_on_poll_interval(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.ecall("setup", 64, 4)
        queue = enclave.ctx.switchless
        ran = []
        for i in range(3):
            queue.post(ran.append, (i,))
        assert ran == []          # below the poll interval: still queued
        assert queue.depth == 3
        queue.post(ran.append, (3,))
        assert ran == [0, 1, 2, 3]  # 4th post triggers the worker pass
        assert queue.depth == 0

    def test_flush_drains_pending_posts(self, enclave):
        queue = enclave.ctx.switchless
        ran = []
        queue.post(ran.append, (1,))
        queue.post(ran.append, (2,))
        assert queue.flush() == 2
        assert ran == [1, 2]
        assert queue.flush() == 0

    def test_reenable_drains_old_backlog(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.ecall("setup", 64, 100)   # high interval: posts stay queued
        old = enclave.ctx.switchless
        ran = []
        old.post(ran.append, (1,))
        old.post(ran.append, (2,))
        assert old.depth == 2
        new = enclave.ctx.enable_switchless()
        assert new is not old
        assert ran == [1, 2]              # old backlog ran, not dropped
        assert new.depth == 0

    def test_full_queue_with_worker_polls_without_crossing(
        self, platform, author
    ):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.ecall("setup", 2, 100)  # tiny capacity, lazy polling
        queue = enclave.ctx.switchless
        ran = []
        before = platform.accountant.snapshot()
        for i in range(5):
            queue.post(ran.append, (i,))
        delta = platform.accountant.delta(before)
        assert all(c.enclave_crossings == 0 for c in delta.values())
        assert queue.stats.fallback_crossings == 0
        assert queue.stats.max_depth == 2
        queue.flush()
        assert ran == [0, 1, 2, 3, 4]

    def test_paused_worker_call_falls_back_to_one_crossing(
        self, enclave, platform
    ):
        queue = enclave.ctx.switchless
        queue.pause_worker()
        before = platform.accountant.snapshot()
        assert queue.call(lambda: 41) == 41
        delta = _domain_delta(platform, enclave, before)
        assert delta.enclave_crossings == 1
        assert delta.sgx_instructions == 2  # EEXIT + ERESUME
        assert queue.stats.fallback_crossings == 1

    def test_fallback_drains_backlog_with_single_crossing(
        self, platform, author
    ):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.ecall("setup", 3, 100)
        queue = enclave.ctx.switchless
        queue.pause_worker()
        ran = []
        before = platform.accountant.snapshot()
        for i in range(7):  # overflows capacity 3 twice
            queue.post(ran.append, (i,))
        queue.flush()
        assert ran == [0, 1, 2, 3, 4, 5, 6]
        delta = _domain_delta(platform, enclave, before)
        # 7 posts over a 3-slot queue with no worker: crossings only
        # when the slots run out (twice) plus the final flush — never
        # one per call.
        assert delta.enclave_crossings == 3
        assert queue.stats.fallback_crossings == 3

    def test_resume_worker_catches_up(self, enclave):
        queue = enclave.ctx.switchless
        queue.pause_worker()
        ran = []
        queue.post(ran.append, (1,))
        assert ran == []
        queue.resume_worker()
        assert ran == [1]


class TestQueueAccounting:
    def test_submit_charges_caller_domain(self, enclave, platform):
        before = platform.accountant.snapshot()
        with platform.accountant.attribute(enclave.domain):
            enclave.ctx.switchless.call(lambda: None)
        delta = platform.accountant.delta(before)
        assert (
            delta[enclave.domain].normal_instructions
            == DEFAULT_MODEL.switchless_slot_normal
        )
        assert delta[enclave.domain].switchless_calls == 1

    def test_service_charges_worker_domain(self, enclave, platform):
        before = platform.accountant.snapshot()
        with platform.accountant.attribute(enclave.domain):
            enclave.ctx.switchless.call(lambda: None)
        delta = platform.accountant.delta(before)
        # Caller side (slot write) lands in the enclave domain; the
        # worker's poll pass lands untrusted.
        assert (
            delta[platform.untrusted_domain].normal_instructions
            == DEFAULT_MODEL.switchless_poll_normal
        )

    def test_fallback_charges_crossing_costs(self, enclave, platform):
        queue = enclave.ctx.switchless
        queue.pause_worker()
        before = platform.accountant.snapshot()
        queue.call(lambda: None)
        delta = platform.accountant.delta(before)
        expected = (
            DEFAULT_MODEL.trampoline_normal
            + DEFAULT_MODEL.switchless_fallback_normal
        )
        assert delta[enclave.domain].normal_instructions == expected


class TestRuntimeIntegration:
    def test_switchless_ocall_requires_enable(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        with pytest.raises(SgxError, match="enable_switchless"):
            enclave.ecall("do_ocalls", 1, True)

    def test_ocall_burst_pays_no_crossings(self, enclave, platform):
        before = platform.accountant.snapshot()
        assert enclave.ecall("do_ocalls", 50, True) == list(range(50))
        delta = _domain_delta(platform, enclave, before)
        assert delta.enclave_crossings == 1        # just the ecall itself
        assert delta.switchless_calls == 50

    def test_regular_ocall_burst_for_comparison(self, enclave, platform):
        before = platform.accountant.snapshot()
        enclave.ecall("do_ocalls", 50, False)
        delta = _domain_delta(platform, enclave, before)
        assert delta.enclave_crossings == 51       # ecall + one per ocall

    def test_switchless_send_returns_none_and_skips_crossing(
        self, enclave, platform
    ):
        before = platform.accountant.snapshot()
        result = enclave.ecall("do_send", [b"x"] * 10, True)
        enclave.ecall("flush")
        assert result is None
        delta = _domain_delta(platform, enclave, before)
        assert delta.enclave_crossings == 2        # the two ecalls only
        assert delta.sgx_instructions == 4         # their EENTER/EEXIT pairs

    def test_switchless_recv_validates_and_returns(self, enclave, platform):
        before = platform.accountant.snapshot()
        packets = enclave.ecall("do_recv", lambda: [b"aa", b"bb"], True)
        assert packets == [b"aa", b"bb"]
        delta = _domain_delta(platform, enclave, before)
        assert delta.enclave_crossings == 1        # just the ecall

    def test_ecall_switchless_falls_back_without_queue(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        assert enclave.switchless_ecalls is None
        assert enclave.ecall_switchless("bump") == 1  # plain ecall path

    def test_ecall_switchless_uses_queue(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.enable_switchless_ecalls()
        before = platform.accountant.snapshot()
        assert enclave.ecall_switchless("bump") == 1
        assert enclave.ecall_switchless("bump", 2) == 3
        delta = platform.accountant.delta(before)
        assert all(c.enclave_crossings == 0 for c in delta.values())
        # The method's work is attributed to the enclave's domain (the
        # worker lives inside for the ecall direction).
        assert delta[enclave.domain].normal_instructions > 0
        assert enclave.switchless_ecalls.stats.serviced == 2

    def test_ecall_switchless_still_validates_exports(self, platform, author):
        enclave = platform.load_enclave(WorkloadProgram(), author_key=author)
        enclave.enable_switchless_ecalls()
        with pytest.raises(SgxError):
            enclave.ecall_switchless("no_such_method")
        from repro.errors import EnclaveAccessError

        with pytest.raises(EnclaveAccessError):
            enclave.ecall_switchless("_count")


class TestAdoption:
    def test_routing_switchless_same_routes_fewer_crossings(self):
        from repro.routing.deployment import run_sgx_routing

        base = run_sgx_routing(n_ases=3, seed=b"sw-routing")
        sw = run_sgx_routing(n_ases=3, seed=b"sw-routing", switchless=True)
        assert sw.routes == base.routes
        assert (
            sw.controller_steady.enclave_crossings
            <= base.controller_steady.enclave_crossings // 2
        )
        assert sw.controller_steady.switchless_calls > 0

    def test_middlebox_switchless_same_verdicts(self):
        from repro.middlebox.scenarios import MiddleboxScenario

        payloads = [b"hello", b"SECRET-TOKEN inside", b"bye"]
        base = MiddleboxScenario(n_middleboxes=1, seed=b"sw-mbox").run(payloads)
        sw = MiddleboxScenario(
            n_middleboxes=1, seed=b"sw-mbox", switchless=True
        ).run(payloads)
        assert sw.replies == base.replies
        assert sw.alerts == base.alerts
        assert sw.stats == base.stats

    def test_relay_core_batch_matches_sequential(self):
        from repro.tor.handshake import OnionKeyPair
        from repro.tor.relay import RelayCore

        def build(seed):
            rng = Rng(seed, "relay")
            return RelayCore("r", OnionKeyPair.generate(rng.fork("key")), rng.fork("c"))

        # An unknown-circuit RELAY cell deterministically produces a
        # destroy directive — enough to compare batch vs sequential.
        from repro.tor.cell import Cell, CellCommand

        cells = [
            (7, Cell(i, CellCommand.RELAY, b"\x00" * 507).encode())
            for i in range(1, 4)
        ]
        sequential = build(b"a")
        expected = []
        for link_id, cell in cells:
            expected.extend(sequential.handle_cell(link_id, cell))
        batched = build(b"a")
        assert batched.handle_cells(cells) == expected
        assert batched.cells_processed == sequential.cells_processed


class TestHeapIndexFix:
    def test_enclave_without_pages_raises_clearly(self, platform):
        class Hollow:
            name = "hollow"
            _pages = []

        with pytest.raises(SgxError, match="no EPC pages"):
            EnclaveContext(Hollow(), platform)

    def test_enclave_missing_pages_attr_raises(self, platform):
        class NoPages:
            name = "nopages"

        with pytest.raises(SgxError, match="no EPC pages"):
            EnclaveContext(NoPages(), platform)

    def test_normal_enclave_has_heap_page(self, enclave):
        assert enclave.ctx.heap_page_count == 1
        enclave.ctx.write_heap(0, b"data")
        assert enclave.ctx.read_heap(0, length=4) == b"data"
