"""Ring-conformance differential suite (the switchless-v2 contract).

Hypothesis generates random ocall programs — interleavings of calls
carrying their own modeled payload cost, reap barriers and flushes —
and runs each program through BOTH boundary regimes:

* the **synchronous** switchless queue (PR 1): submit, spin, read;
* the **async rings** (this PR): post N descriptors, harvest later.

The contract asserted for every program:

1. **identical results** — each call's return value, keyed by ticket;
2. **identical final state** — the payload side-effect log, in order
   (rings service strictly in submission order);
3. **integer-equal cost counters modulo the modeled boundary layer** —
   subtract each arm's boundary-layer charges (computed exactly from
   its stats x the ``CostModel`` constants, never measured) and the
   remaining payload cost must match to the instruction;
4. **exact reconciliation** — a traced ring arm's span tree must
   account for every charged instruction (``obs.reconcile``).

A failing program is dumped to ``conformance-failures/`` as JSON so
the nightly big-budget job (and a human) can replay it.  Example
budget: ``REPRO_CONFORMANCE_EXAMPLES`` (default 25 for tier-1; the
``slow``-marked sweep uses ``REPRO_CONFORMANCE_EXAMPLES_NIGHTLY``,
default 500).
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cost import DEFAULT_MODEL
from repro.cost import context as cost_context
from repro.crypto.drbg import Rng
from repro.sgx import RingPair, SgxPlatform
from repro.sgx.switchless import SwitchlessQueue

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))
NIGHTLY_EXAMPLES = int(
    os.environ.get("REPRO_CONFORMANCE_EXAMPLES_NIGHTLY", "500")
)
FAILURE_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                           "conformance-failures")

ENCLAVE_DOMAIN = "enclave:conformance"


# ---------------------------------------------------------------------------
# Program generation
# ---------------------------------------------------------------------------

# A program is a list of:
#   ("call", value)  — one async-able ocall carrying value-dependent cost
#   ("barrier",)     — reap every outstanding ticket (in order)
#   ("flush",)       — service the ring without reaping (sync: no-op)
# Cancellation is deliberately absent: the sync arm has nothing to
# cancel (every call completes inline), so cancel semantics are pinned
# by tests/sgx/test_rings.py instead.
_program = st.lists(
    st.one_of(
        st.tuples(st.just("call"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("barrier")),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=60,
)
_geometry = st.fixed_dictionaries(
    {
        "harvest_depth": st.integers(min_value=1, max_value=10),
        "spin_budget": st.integers(min_value=0, max_value=6),
        "capacity": st.integers(min_value=1, max_value=8),
        "backpressure": st.sampled_from(["block", "fallback"]),
    }
)


def _payload(log, value):
    """The ocall body: value-dependent modeled cost + a side effect."""
    cost_context.charge_normal(23 + 7 * (value % 13))
    log.append(value)
    return value * value + 1


# ---------------------------------------------------------------------------
# The two arms
# ---------------------------------------------------------------------------


def _run_sync(program):
    """The PR 1 regime: every call completes synchronously, inline."""
    platform = SgxPlatform("conf-sync", rng=Rng(b"conf-sync"))
    queue = SwitchlessQueue(platform, "ocall", ENCLAVE_DOMAIN)
    log = []
    results = {}
    ticket = 0
    before = platform.accountant.snapshot()
    for op in program:
        if op[0] == "call":
            results[ticket] = queue.call(_payload, (log, op[1]))
            ticket += 1
        # barrier/flush: nothing in flight, nothing to do.
    total = _sum_counters(platform.accountant.delta(before))
    return results, log, total, queue.stats


def _run_rings(program, geometry, tracer=None):
    """The async regime: post, then harvest at barriers/boundaries."""
    with obs.tracing(tracer) if tracer is not None else _null_context():
        platform = SgxPlatform("conf-rings", rng=Rng(b"conf-rings"))
        ring = RingPair(
            platform,
            "ocall",
            ENCLAVE_DOMAIN,
            capacity=geometry["capacity"],
            harvest_depth=geometry["harvest_depth"],
            spin_budget=geometry["spin_budget"],
            backpressure=geometry["backpressure"],
        )
        log = []
        results = {}
        outstanding = []
        before = platform.accountant.snapshot()
        for op in program:
            if op[0] == "call":
                outstanding.append(ring.submit(_payload, (log, op[1])))
            elif op[0] == "barrier":
                for ticket in outstanding:
                    results[ticket] = ring.reap(ticket)
                outstanding = []
            else:
                ring.flush()
        for ticket in outstanding:
            results[ticket] = ring.reap(ticket)
        total = _sum_counters(platform.accountant.delta(before))
    return results, log, total, ring.stats


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def _sum_counters(delta):
    from repro.cost import Counter

    total = Counter()
    for counter in delta.values():
        total += counter
    return total


# ---------------------------------------------------------------------------
# Exact boundary-layer cost, from stats x model constants
# ---------------------------------------------------------------------------


def _sync_boundary(stats, model):
    """(normal, sgx, crossings) the switchless queue's plumbing cost."""
    normal = (
        stats.submitted * model.switchless_slot_normal
        + stats.polls * model.switchless_poll_normal
        + stats.fallback_crossings
        * (model.trampoline_normal + model.switchless_fallback_normal)
    )
    return normal, 2 * stats.fallback_crossings, stats.fallback_crossings


def _ring_boundary(stats, model):
    """(normal, sgx, crossings) the ring plumbing cost."""
    crossings = stats.fallback_crossings + stats.recovery_crossings
    normal = (
        stats.submitted * model.ring_submit_normal
        + stats.reaped * model.ring_reap_normal
        + stats.polls * model.ring_poll_normal
        + (stats.spins + stats.overflow_spin) * model.ring_spin_normal
        + stats.wakeups * model.ring_wakeup_normal
        + crossings * (model.trampoline_normal + model.ring_fallback_normal)
    )
    return normal, 2 * crossings, crossings


# ---------------------------------------------------------------------------
# The differential check
# ---------------------------------------------------------------------------


def _check_conformance(program, geometry):
    sync_results, sync_log, sync_total, sync_stats = _run_sync(program)
    ring_results, ring_log, ring_total, ring_stats = _run_rings(
        program, geometry
    )
    model = DEFAULT_MODEL  # both platforms run the paper's constants

    # 1. identical results per ticket
    assert ring_results == sync_results, "results diverged"
    # 2. identical final state (submission-order servicing)
    assert ring_log == sync_log, "side-effect log diverged"
    # 3. counters integer-equal after subtracting each arm's modeled
    #    boundary layer — the payload cost must be untouched by the
    #    transport it rode on.
    sync_b = _sync_boundary(sync_stats, model)
    ring_b = _ring_boundary(ring_stats, model)
    assert ring_total.normal_instructions - ring_b[0] == (
        sync_total.normal_instructions - sync_b[0]
    ), "payload normal-instruction cost diverged"
    assert ring_total.sgx_instructions - ring_b[1] == (
        sync_total.sgx_instructions - sync_b[1]
    ), "sgx-instruction cost diverged"
    assert ring_total.enclave_crossings - ring_b[2] == (
        sync_total.enclave_crossings - sync_b[2]
    ), "crossing count diverged"
    assert (
        ring_total.switchless_calls == sync_total.switchless_calls
    ), "switchless-call count diverged"
    # Books must balance internally too.
    assert ring_stats.reaped == sync_stats.submitted
    assert ring_stats.completed >= ring_stats.reaped


def _dump_failure(program, geometry, error):
    os.makedirs(FAILURE_DIR, exist_ok=True)
    doc = {
        "program": [list(op) for op in program],
        "geometry": geometry,
        "error": str(error),
    }
    blob = json.dumps(doc, sort_keys=True, indent=2)
    digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
    path = os.path.join(FAILURE_DIR, f"program-{digest}.json")
    with open(path, "w") as fh:
        fh.write(blob + "\n")
    return path


def _differential(program, geometry):
    try:
        _check_conformance(program, geometry)
    except AssertionError as exc:
        path = _dump_failure(program, geometry, exc)
        raise AssertionError(
            f"conformance failure (program dumped to {path}): {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# The suites
# ---------------------------------------------------------------------------


@settings(max_examples=EXAMPLES, deadline=None)
@given(program=_program, geometry=_geometry)
def test_conformance_random_programs(program, geometry):
    _differential(program, geometry)


@pytest.mark.slow
@settings(max_examples=NIGHTLY_EXAMPLES, deadline=None)
@given(program=_program, geometry=_geometry)
def test_conformance_big_budget(program, geometry):
    """The nightly sweep: same property, 20x the example budget."""
    _differential(program, geometry)


def test_replay_dumped_failures():
    """Any program previously dumped by a failing run must now pass —
    the nightly job replays the corpus before the random sweep."""
    if not os.path.isdir(FAILURE_DIR):
        pytest.skip("no conformance failures on record")
    dumps = sorted(os.listdir(FAILURE_DIR))
    if not dumps:
        pytest.skip("no conformance failures on record")
    for name in dumps:
        with open(os.path.join(FAILURE_DIR, name)) as fh:
            doc = json.load(fh)
        _check_conformance(
            [tuple(op) for op in doc["program"]], doc["geometry"]
        )


class TestKnownPrograms:
    """Deterministic corner programs, always run (no hypothesis)."""

    GEOMETRY = {
        "harvest_depth": 4,
        "spin_budget": 2,
        "capacity": 4,
        "backpressure": "fallback",
    }

    def test_empty_barriers_only(self):
        _differential([("barrier",), ("flush",), ("barrier",)], self.GEOMETRY)

    def test_single_call(self):
        _differential([("call", 7)], self.GEOMETRY)

    def test_burst_past_every_boundary(self):
        # 13 calls against capacity 4 / depth 4: overflows, harvests
        # and the final implicit barrier all fire.
        _differential(
            [("call", v) for v in range(13)] + [("barrier",)], self.GEOMETRY
        )

    def test_flush_between_bursts(self):
        _differential(
            [("call", 1), ("call", 2), ("flush",), ("call", 3), ("barrier",)],
            self.GEOMETRY,
        )

    def test_block_backpressure_geometry(self):
        geometry = dict(self.GEOMETRY, backpressure="block", capacity=2)
        _differential([("call", v) for v in range(9)], geometry)


class TestTracedReconciliation:
    def test_ring_arm_reconciles_exactly(self):
        """Every instruction the ring arm charges is visible to the
        span tree: obs.reconcile is exact, and the ring's typed
        instants all appear."""
        tracer = obs.Tracer()
        program = [("call", v) for v in range(9)] + [("barrier",)]
        geometry = {
            "harvest_depth": 3,
            "spin_budget": 1,
            "capacity": 4,
            "backpressure": "fallback",
        }
        _run_rings(program, geometry, tracer=tracer)
        obs.reconcile(tracer)  # raises ReconcileError on any mismatch
        names = {i.name for i in tracer.instants}
        assert "ring_submit" in names
        assert "ring_reap" in names
        assert "switchless_hit" in names
        assert "ring_worker_sleep" in names
        assert "ring_worker_wake" in names


class TestEndToEndAdoption:
    """The rings knob must be invisible to application results."""

    def test_middlebox_rings_byte_identical_lockstep(self):
        from repro.middlebox.scenarios import MiddleboxScenario

        payloads = [b"alpha", b"SECRET-TOKEN inside", b"omega"]
        base = MiddleboxScenario(n_middleboxes=1, seed=b"conf-mbox").run(
            payloads, pipeline=False
        )
        rung = MiddleboxScenario(
            n_middleboxes=1, seed=b"conf-mbox", rings=True
        ).run(payloads, pipeline=False)
        assert rung.replies == base.replies
        assert rung.alerts == base.alerts
        assert rung.stats == base.stats
        assert rung.provisioned == base.provisioned

    def test_middlebox_rings_pipelined_same_replies(self):
        from repro.middlebox.scenarios import MiddleboxScenario

        payloads = [b"p%d" % i for i in range(8)]
        base = MiddleboxScenario(n_middleboxes=2, seed=b"conf-pipe").run(
            payloads, pipeline=True
        )
        rung = MiddleboxScenario(
            n_middleboxes=2, seed=b"conf-pipe", rings=True, ring_depth=4
        ).run(payloads, pipeline=True)
        assert rung.replies == base.replies
        assert rung.stats == base.stats

    def test_middlebox_rings_block_rule_still_blocks(self):
        from repro.middlebox.scenarios import MiddleboxScenario

        rules = [("kill", b"DROP-ME", "block")]
        rung = MiddleboxScenario(
            n_middleboxes=1, rules=rules, seed=b"conf-block", rings=True
        ).run([b"ok", b"please DROP-ME now", b"after"], pipeline=False)
        assert rung.blocked
        assert rung.replies == [b"OK:ok"]

    def test_tor_rings_byte_identical_client_result(self):
        from repro.tor.deployment import TorDeployment, TorDeploymentConfig

        def run(rings):
            deployment = TorDeployment(
                TorDeploymentConfig(
                    phase=2, n_relays=4, seed=b"conf-tor", rings=rings
                )
            )
            return deployment.run_client_request(b"GET /conformance")

        assert run(True) == run(False)
