"""Mini-TLS: handshake, certificates, record exchange over the network."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import ProtocolError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.tls.handshake import (
    Certificate,
    CertificateAuthority,
    TlsClientSession,
    TlsServerSession,
)
from repro.tls.session import TlsServer, tls_connect


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(Rng(b"tls-test-ca"))


def handshake_pair(ca, server_name="web", client_expects="web"):
    identity, certificate = ca.issue(server_name, Rng(b"srv"))
    client = TlsClientSession(client_expects, ca.public, Rng(b"cli"))
    server = TlsServerSession(identity, certificate, Rng(b"srv-hs"))
    return client, server


class TestHandshakeStateMachines:
    def test_full_handshake_derives_matching_keys(self, ca):
        client, server = handshake_pair(ca)
        hello = client.start()
        server_hello = server.handle_client_hello(hello)
        finished = client.handle_server_hello(server_hello)
        server_finished = server.handle_client_finished(finished)
        client.handle_server_finished(server_finished)
        assert client.complete and server.complete
        assert client.keys == server.keys

    def test_wrong_server_name_rejected(self, ca):
        client, server = handshake_pair(ca, server_name="evil", client_expects="web")
        server_hello = server.handle_client_hello(client.start())
        with pytest.raises(ProtocolError, match="certificate names"):
            client.handle_server_hello(server_hello)

    def test_unpinned_ca_rejected(self, ca):
        rogue_ca = CertificateAuthority(Rng(b"rogue"))
        identity, certificate = rogue_ca.issue("web", Rng(b"r"))
        client = TlsClientSession("web", ca.public, Rng(b"cli"))
        server = TlsServerSession(identity, certificate, Rng(b"hs"))
        server_hello = server.handle_client_hello(client.start())
        with pytest.raises(ProtocolError, match="invalid"):
            client.handle_server_hello(server_hello)

    def test_tampered_server_hello_rejected(self, ca):
        client, server = handshake_pair(ca)
        server_hello = bytearray(server.handle_client_hello(client.start()))
        server_hello[33] ^= 0x01  # flip a DH public byte
        with pytest.raises(ProtocolError):
            client.handle_server_hello(bytes(server_hello))

    def test_bad_client_finished_rejected(self, ca):
        client, server = handshake_pair(ca)
        server.handle_client_hello(client.start())
        with pytest.raises(ProtocolError):
            server.handle_client_finished(b"\x00" * 32)

    def test_certificate_encode_decode(self, ca):
        _, certificate = ca.issue("host", Rng(b"c"))
        decoded = Certificate.decode(certificate.encode())
        assert decoded == certificate
        decoded.verify(ca.public)


class TestNetworkedTls:
    def build(self, ca):
        sim = Simulator()
        net = Network(sim, rng=Rng(b"tls-net"), default_link=LinkParams(latency=0.002))
        server_host = net.add_host("web")
        identity, certificate = ca.issue("web", Rng(b"web-id"))

        def handler(tls):
            while True:
                try:
                    request = yield from tls.recv(timeout=None)
                except ProtocolError:
                    return
                tls.send(b"resp:" + request)

        TlsServer(server_host, 443, identity, certificate, Rng(b"web-hs"), handler)
        client_host = net.add_host("client")
        return sim, net, client_host

    def test_request_response(self, ca):
        sim, _, client_host = self.build(ca)
        out = {}

        def client():
            tls = yield from tls_connect(
                client_host, "web", 443, "web", ca.public, Rng(b"c1")
            )
            tls.send(b"GET /")
            out["reply"] = yield from tls.recv()

        sim.spawn(client())
        sim.run(until=60)
        assert out["reply"] == b"resp:GET /"

    def test_plaintext_not_on_wire(self, ca):
        sim, net, client_host = self.build(ca)
        secret = b"credit card 1234-5678"
        wire = []
        net.tap = lambda d: (wire.append(d.payload), d)[1]
        out = {}

        def client():
            tls = yield from tls_connect(
                client_host, "web", 443, "web", ca.public, Rng(b"c2")
            )
            tls.send(secret)
            out["reply"] = yield from tls.recv()

        sim.spawn(client())
        sim.run(until=60)
        assert out["reply"] == b"resp:" + secret
        assert secret not in b"".join(wire)

    def test_multiple_messages_in_order(self, ca):
        sim, _, client_host = self.build(ca)
        out = {"replies": []}

        def client():
            tls = yield from tls_connect(
                client_host, "web", 443, "web", ca.public, Rng(b"c3")
            )
            for i in range(5):
                tls.send(f"msg{i}".encode())
                out["replies"].append((yield from tls.recv()))

        sim.spawn(client())
        sim.run(until=60)
        assert out["replies"] == [f"resp:msg{i}".encode() for i in range(5)]

    def test_session_key_export_matches(self, ca):
        sim, _, client_host = self.build(ca)
        out = {}

        def client():
            tls = yield from tls_connect(
                client_host, "web", 443, "web", ca.public, Rng(b"c4")
            )
            out["keys"] = tls.export_session_keys()

        sim.spawn(client())
        sim.run(until=60)
        keys = out["keys"]
        assert len(keys.initiator_enc) == 16
        assert keys.initiator_enc != keys.responder_enc
