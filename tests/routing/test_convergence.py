"""Failure reconvergence: distributed BGP vs the centralized controller."""

import pytest

from repro.errors import PolicyError
from repro.routing.bgp import DistributedBgpSimulator
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.policy import LocalPolicy
from repro.routing.relationships import Relationship


def fresh_policies(n=15, seed=b"conv"):
    _, policies = build_policies(n, seed, override_fraction=0)
    return policies


def pick_failable(policies):
    """A transit AS whose failure leaves the graph connected: pick a
    middle-tier AS whose neighbors all have other neighbors."""
    for asn in sorted(policies, reverse=True):
        policy = policies[asn]
        if not policy.neighbor_relationships:
            continue
        neighbors = policy.neighbor_relationships
        if all(
            len(policies[n].neighbor_relationships) > 1 for n in neighbors
        ):
            return asn
    raise AssertionError("no failable AS in this topology")


class TestDistributedReconvergence:
    def test_failed_as_routes_disappear(self):
        policies = fresh_policies()
        sim = DistributedBgpSimulator(policies)
        sim.run()
        victim = pick_failable(policies)
        victim_prefix = f"10.{victim}.0.0/16"
        survivor = next(a for a in policies if a != victim)
        assert victim_prefix in sim.best_routes(survivor)

        sim.fail_as(victim)
        for asn in sim._policies:
            routes = sim.best_routes(asn)
            assert victim_prefix not in routes
            for route in routes.values():
                assert victim not in route.path

    def test_fail_unknown_as_raises(self):
        sim = DistributedBgpSimulator(fresh_policies())
        sim.run()
        with pytest.raises(PolicyError):
            sim.fail_as(9999)

    def test_reconvergence_agrees_with_fresh_controller(self):
        """Post-failure distributed state == controller recomputation
        on the surviving topology (the central consistency claim)."""
        policies = fresh_policies(n=20, seed=b"conv2")
        sim = DistributedBgpSimulator(policies)
        sim.run()
        victim = pick_failable(policies)
        sim.fail_as(victim)

        controller = InterDomainController()
        for policy in fresh_policies(n=20, seed=b"conv2").values():
            controller.submit_policy(policy)
        controller.remove_policy(victim)
        controller.compute_routes()

        for asn in sim._policies:
            assert controller.routes_for(asn) == sim.best_routes(asn), asn

    def test_multiple_failures(self):
        policies = fresh_policies(n=20, seed=b"conv3")
        sim = DistributedBgpSimulator(policies)
        sim.run()
        failed = []
        for _ in range(2):
            victim = pick_failable(
                {a: p for a, p in sim._policies.items()}
            )
            sim.fail_as(victim)
            failed.append(victim)
        for asn in sim._policies:
            for route in sim.best_routes(asn).values():
                assert not set(failed) & set(route.path)


class TestControllerRemoval:
    def test_remove_policy_invalidates_results(self):
        policies = fresh_policies(n=10, seed=b"rm")
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        first = controller.compute_routes()
        victim = pick_failable(policies)
        controller.remove_policy(victim)
        second = controller.compute_routes()
        assert victim not in second
        assert second != first

    def test_remove_unknown_raises(self):
        controller = InterDomainController()
        with pytest.raises(PolicyError):
            controller.remove_policy(1)

    def test_symmetry_preserved_after_removal(self):
        controller = InterDomainController()
        controller.submit_policy(
            LocalPolicy(1, {2: Relationship.CUSTOMER}, ["10.1.0.0/16"])
        )
        controller.submit_policy(
            LocalPolicy(2, {1: Relationship.PROVIDER}, ["10.2.0.0/16"])
        )
        controller.remove_policy(1)
        controller.compute_routes()  # must not raise symmetry errors
