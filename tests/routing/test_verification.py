"""Policy-verification predicates (paper Section 3.1)."""

import pytest

from repro.errors import PolicyError
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.policy import LocalPolicy
from repro.routing.relationships import Relationship
from repro.routing.verification import Predicate, PredicateEngine, PredicateKind


def diamond_controller():
    """AS1 originates; AS2/AS3 are AS1's providers; AS4 tops both.

    AS1 multihomes to 2 and 3 with an override preferring 2; so AS4
    should (via export rules) reach AS1 through its customers.
    """
    policies = {
        1: LocalPolicy(
            1,
            {2: Relationship.PROVIDER, 3: Relationship.PROVIDER},
            ["10.1.0.0/16"],
            local_pref_overrides={2: 85},
        ),
        2: LocalPolicy(
            2, {1: Relationship.CUSTOMER, 4: Relationship.PROVIDER}, ["10.2.0.0/16"]
        ),
        3: LocalPolicy(
            3, {1: Relationship.CUSTOMER, 4: Relationship.PROVIDER}, ["10.3.0.0/16"]
        ),
        4: LocalPolicy(
            4, {2: Relationship.CUSTOMER, 3: Relationship.CUSTOMER}, ["10.4.0.0/16"]
        ),
    }
    controller = InterDomainController()
    for policy in policies.values():
        controller.submit_policy(policy)
    controller.compute_routes()
    return controller


@pytest.fixture()
def engine():
    return PredicateEngine(diamond_controller())


def agreed(engine, predicate):
    engine.register(predicate, predicate.subject)
    engine.register(predicate, predicate.partner)
    return predicate


class TestConsent:
    def test_single_party_registration_not_agreed(self, engine):
        p = Predicate("p1", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16")
        engine.register(p, 1)
        assert not engine.is_agreed("p1")
        with pytest.raises(PolicyError, match="consent"):
            engine.evaluate("p1", 1)

    def test_both_parties_agree(self, engine):
        p = agreed(
            engine, Predicate("p2", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16")
        )
        assert engine.is_agreed("p2")
        engine.evaluate("p2", 1)
        engine.evaluate("p2", 2)

    def test_third_party_cannot_register(self, engine):
        p = Predicate("p3", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16")
        with pytest.raises(PolicyError, match="not a party"):
            engine.register(p, 3)

    def test_third_party_cannot_query(self, engine):
        p = agreed(
            engine, Predicate("p4", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16")
        )
        with pytest.raises(PolicyError, match="may not query"):
            engine.evaluate("p4", 3)

    def test_conflicting_registration_rejected(self, engine):
        engine.register(
            Predicate("p5", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16"), 1
        )
        with pytest.raises(PolicyError, match="conflicting"):
            engine.register(
                Predicate("p5", PredicateKind.PREFERS_VIA, 1, 2, "10.3.0.0/16"), 2
            )

    def test_unknown_predicate(self, engine):
        with pytest.raises(PolicyError, match="unknown"):
            engine.evaluate("ghost", 1)


class TestEvaluation:
    def test_prefers_via_true(self, engine):
        # AS1 overrode pref so AS3 (default 80) beats AS2 (85? no --
        # override set 2 -> 85... default provider is 80, so 2 wins).
        p = agreed(
            engine, Predicate("e1", PredicateKind.PREFERS_VIA, 1, 2, "10.4.0.0/16")
        )
        assert engine.evaluate("e1", 2) is True

    def test_prefers_via_false(self, engine):
        p = agreed(
            engine, Predicate("e2", PredicateKind.PREFERS_VIA, 1, 3, "10.4.0.0/16")
        )
        assert engine.evaluate("e2", 3) is False

    def test_exports_to(self, engine):
        # Does AS2 export AS1's prefix to AS4?  AS1 is 2's customer ->
        # exported to everyone, and AS4 picks a customer route.
        p = agreed(
            engine, Predicate("e3", PredicateKind.EXPORTS_TO, 2, 4, "10.1.0.0/16")
        )
        assert engine.evaluate("e3", 4) is True

    def test_path_length_bound(self, engine):
        p = agreed(
            engine,
            Predicate(
                "e4", PredicateKind.PATH_LENGTH_AT_MOST, 4, 1, "10.1.0.0/16", bound=2
            ),
        )
        assert engine.evaluate("e4", 4) is True
        q = agreed(
            engine,
            Predicate(
                "e5", PredicateKind.PATH_LENGTH_AT_MOST, 4, 1, "10.1.0.0/16", bound=1
            ),
        )
        assert engine.evaluate("e5", 1) is False

    def test_uses_customer_route(self, engine):
        p = agreed(
            engine,
            Predicate(
                "e6", PredicateKind.USES_CUSTOMER_ROUTE, 4, 1, "10.1.0.0/16"
            ),
        )
        assert engine.evaluate("e6", 4) is True
        q = agreed(
            engine,
            Predicate(
                "e7", PredicateKind.USES_CUSTOMER_ROUTE, 1, 4, "10.4.0.0/16"
            ),
        )
        # AS1 reaches AS4 via a provider, not a customer.
        assert engine.evaluate("e7", 1) is False

    def test_missing_route_is_false(self, engine):
        p = agreed(
            engine,
            Predicate("e8", PredicateKind.PREFERS_VIA, 1, 2, "99.99.0.0/16"),
        )
        assert engine.evaluate("e8", 1) is False

    def test_encode_decode(self):
        p = Predicate("x", PredicateKind.EXPORTS_TO, 7, 9, "10.7.0.0/16", bound=3)
        assert Predicate.decode(p.encode()) == p


class TestOnGeneratedTopology:
    def test_predicates_on_random_topology(self):
        _, policies = build_policies(15, b"verif-seed")
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        routes = controller.compute_routes()
        engine = PredicateEngine(controller)

        # For every AS with a route, PREFERS_VIA its actual first hop
        # must be True, and via any other neighbor must be False.
        checked = 0
        for asn, by_prefix in routes.items():
            for prefix, route in list(by_prefix.items())[:3]:
                first_hop = route.learned_from
                p = Predicate(f"t{checked}", PredicateKind.PREFERS_VIA, asn, first_hop, prefix)
                engine.register(p, asn)
                engine.register(p, first_hop)
                assert engine.evaluate(f"t{checked}", asn) is True
                checked += 1
        assert checked > 10
