"""Relationships, topology generation and policy encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import Rng
from repro.errors import PolicyError
from repro.routing.policy import LocalPolicy, policy_from_topology
from repro.routing.relationships import (
    Relationship,
    default_local_pref,
    may_export,
)
from repro.routing.topology import AsTopology, generate_topology


class TestRelationships:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER

    def test_default_pref_ordering(self):
        assert (
            default_local_pref(Relationship.CUSTOMER)
            > default_local_pref(Relationship.PEER)
            > default_local_pref(Relationship.PROVIDER)
        )

    def test_customer_routes_export_everywhere(self):
        for to in Relationship:
            assert may_export(Relationship.CUSTOMER, to)

    def test_peer_and_provider_routes_export_only_to_customers(self):
        for learned in (Relationship.PEER, Relationship.PROVIDER):
            assert may_export(learned, Relationship.CUSTOMER)
            assert not may_export(learned, Relationship.PEER)
            assert not may_export(learned, Relationship.PROVIDER)


class TestTopologyStructure:
    def test_manual_build(self):
        topo = AsTopology.empty()
        topo.add_as(1)
        topo.add_as(2)
        topo.add_link(1, 2, Relationship.CUSTOMER)  # 2 is 1's customer
        assert topo.relationship(1, 2) is Relationship.CUSTOMER
        assert topo.relationship(2, 1) is Relationship.PROVIDER
        assert topo.customers(1) == [2]
        assert topo.providers(2) == [1]

    def test_duplicate_as_rejected(self):
        topo = AsTopology.empty()
        topo.add_as(1)
        with pytest.raises(PolicyError):
            topo.add_as(1)

    def test_self_link_rejected(self):
        topo = AsTopology.empty()
        topo.add_as(1)
        with pytest.raises(PolicyError):
            topo.add_link(1, 1, Relationship.PEER)

    def test_duplicate_link_rejected(self):
        topo = AsTopology.empty()
        topo.add_as(1)
        topo.add_as(2)
        topo.add_link(1, 2, Relationship.PEER)
        with pytest.raises(PolicyError):
            topo.add_link(2, 1, Relationship.PEER)

    def test_non_neighbor_relationship_raises(self):
        topo = AsTopology.empty()
        topo.add_as(1)
        topo.add_as(2)
        with pytest.raises(PolicyError):
            topo.relationship(1, 2)

    def test_default_prefix_assigned(self):
        topo = AsTopology.empty()
        topo.add_as(7)
        assert topo.prefixes[7] == ["10.7.0.0/16"]

    def test_all_prefixes_deterministic_order(self):
        topo = AsTopology.empty()
        for asn in (3, 1, 2):
            topo.add_as(asn)
        assert [p[1] for p in topo.all_prefixes()] == [1, 2, 3]


class TestGeneratedTopology:
    @pytest.mark.parametrize("n", [2, 5, 10, 30, 50])
    def test_generation_properties(self, n):
        topo = generate_topology(n, Rng(b"gen", f"n{n}"))
        assert len(topo.asns) == n
        # Every non-tier1 AS has at least one provider (connectivity).
        n_tier1 = max(1, n // 10)
        for asn in topo.asns[n_tier1:]:
            assert topo.providers(asn), f"AS{asn} has no provider"
        # Relationship symmetry.
        for a in topo.asns:
            for b, rel in topo.rel[a].items():
                assert topo.rel[b][a] is rel.inverse()

    def test_customer_provider_graph_is_acyclic(self):
        topo = generate_topology(40, Rng(b"acyclic"))
        # DFS over provider edges must never revisit the stack.
        state = {}

        def dfs(asn):
            state[asn] = "open"
            for provider in topo.providers(asn):
                if state.get(provider) == "open":
                    raise AssertionError("customer-provider cycle")
                if provider not in state:
                    dfs(provider)
            state[asn] = "done"

        for asn in topo.asns:
            if asn not in state:
                dfs(asn)

    def test_deterministic_for_seed(self):
        a = generate_topology(20, Rng(b"det"))
        b = generate_topology(20, Rng(b"det"))
        assert a.rel == b.rel

    def test_too_small_rejected(self):
        with pytest.raises(PolicyError):
            generate_topology(1, Rng(b"x"))


class TestLocalPolicy:
    def make_policy(self):
        return LocalPolicy(
            asn=10,
            neighbor_relationships={
                20: Relationship.PROVIDER,
                30: Relationship.PEER,
                40: Relationship.CUSTOMER,
            },
            prefixes=["10.10.0.0/16"],
            local_pref_overrides={30: 150},
        )

    def test_local_pref_with_override(self):
        policy = self.make_policy()
        assert policy.local_pref(30) == 150
        assert policy.local_pref(40) == 100
        assert policy.local_pref(20) == 80

    def test_unknown_neighbor_raises(self):
        with pytest.raises(PolicyError):
            self.make_policy().local_pref(99)

    def test_validate_rejects_foreign_override(self):
        policy = self.make_policy()
        policy.local_pref_overrides[99] = 120
        with pytest.raises(PolicyError):
            policy.validate()

    def test_validate_rejects_out_of_range_pref(self):
        policy = self.make_policy()
        policy.local_pref_overrides[30] = 10_000
        with pytest.raises(PolicyError):
            policy.validate()

    def test_encode_decode_roundtrip(self):
        policy = self.make_policy()
        decoded = LocalPolicy.decode(policy.encode())
        assert decoded == policy

    def test_policy_from_topology(self):
        topo = generate_topology(10, Rng(b"pft"))
        policy = policy_from_topology(topo, topo.asns[0])
        assert policy.asn == topo.asns[0]
        assert policy.neighbor_relationships == topo.rel[topo.asns[0]]


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=40), seed=st.integers(0, 1000))
def test_property_generated_policies_roundtrip(n, seed):
    topo = generate_topology(n, Rng(repr(seed).encode()))
    for asn in topo.asns:
        policy = policy_from_topology(topo, asn)
        assert LocalPolicy.decode(policy.encode()) == policy
