"""Property suite for the Internet-scale topology generator.

:func:`repro.routing.topology.generate_internet_topology` feeds the
million-client load runs, so its structural promises are pinned at the
scale they are actually used (10^4 ASes in tier-1; the ``slow``-marked
sweep runs 10^5):

* **determinism** — same seed, same graph, byte-for-byte;
* **connectedness** — every AS reaches the tier-1 clique through its
  provider chain (providers are always earlier in growth order, so the
  customer-provider digraph is acyclic and rooted in the clique);
* **degree distribution** — preferential attachment yields the heavy
  tail measured AS graphs have: a small max-degree floor, a tiny
  median, and a top-1% share far above uniform;
* **region partition** — every ASN gets a region in range, no region
  is empty, and the first ``n_regions`` ASes seed one region each.
"""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import PolicyError
from repro.routing.topology import generate_internet_topology

N = 10_000
REGIONS = 8


@pytest.fixture(scope="module")
def graph():
    topology, regions = generate_internet_topology(
        N, Rng(b"topo-props"), n_regions=REGIONS
    )
    return topology, regions


def _fingerprint(topology, regions):
    return (
        tuple(topology.asns),
        tuple(sorted((a, b, r.name) for a, nbrs in topology.rel.items()
                     for b, r in nbrs.items())),
        tuple(sorted(regions.items())),
    )


class TestDeterminism:
    def test_seeded_regeneration_is_identical(self, graph):
        topology, regions = graph
        again = generate_internet_topology(
            N, Rng(b"topo-props"), n_regions=REGIONS
        )
        assert _fingerprint(topology, regions) == _fingerprint(*again)

    def test_different_seed_different_graph(self):
        a = generate_internet_topology(200, Rng(b"seed-a"))
        b = generate_internet_topology(200, Rng(b"seed-b"))
        assert _fingerprint(*a) != _fingerprint(*b)


class TestConnectedness:
    def test_every_as_reaches_tier1(self, graph):
        topology, _ = graph
        # Walk provider chains: every AS must reach a tier-1 (an AS
        # with no providers) in finitely many hops, with no cycles.
        for asn in topology.asns:
            seen = set()
            frontier = asn
            while topology.providers(frontier):
                assert frontier not in seen, f"provider cycle at AS{asn}"
                seen.add(frontier)
                frontier = min(topology.providers(frontier))
        # and the graph is a single component under plain adjacency:
        root = topology.asns[0]
        visited = {root}
        stack = [root]
        while stack:
            for nbr in topology.rel[stack.pop()]:
                if nbr not in visited:
                    visited.add(nbr)
                    stack.append(nbr)
        assert len(visited) == N

    def test_providers_are_earlier_in_growth_order(self, graph):
        topology, _ = graph
        for asn in topology.asns:
            for provider in topology.providers(asn):
                assert provider < asn


class TestDegreeDistribution:
    def test_heavy_tail(self, graph):
        topology, _ = graph
        degrees = sorted(
            (len(topology.rel[asn]) for asn in topology.asns), reverse=True
        )
        n_edges = sum(degrees) // 2
        # Growth adds 1-2 provider edges per AS beyond the clique.
        assert N - 1 <= n_edges <= 2 * N + REGIONS * REGIONS
        # Heavy tail: the best-connected carrier dwarfs the median ...
        assert degrees[0] >= 50
        assert degrees[N // 2] <= 4
        # ... and the top 1% of ASes hold a grossly super-uniform
        # share of all edge endpoints (uniform would be ~1%).
        top_share = sum(degrees[: N // 100]) / sum(degrees)
        assert top_share > 0.10

    def test_bounded_by_population(self, graph):
        topology, _ = graph
        for asn in topology.asns:
            assert 1 <= len(topology.rel[asn]) < N


class TestRegionPartition:
    def test_total_in_range_and_nonempty(self, graph):
        topology, regions = graph
        assert set(regions) == set(topology.asns)
        assert set(regions.values()) == set(range(REGIONS))

    def test_seed_ases_pin_their_regions(self, graph):
        _, regions = graph
        for asn in range(1, REGIONS + 1):
            assert regions[asn] == asn - 1

    def test_regions_are_roughly_balanced(self, graph):
        _, regions = graph
        sizes = [0] * REGIONS
        for region in regions.values():
            sizes[region] += 1
        # Geography-biased attachment must not collapse into one
        # region: no region holds more than half the Internet, none
        # is anywhere near empty.
        assert max(sizes) < N // 2
        assert min(sizes) > N // 1000

    def test_validation_errors(self):
        with pytest.raises(PolicyError):
            generate_internet_topology(1, Rng(b"x"))
        with pytest.raises(PolicyError):
            generate_internet_topology(10, Rng(b"x"), n_regions=0)
        with pytest.raises(PolicyError):
            generate_internet_topology(10, Rng(b"x"), n_regions=11)
        with pytest.raises(PolicyError):
            generate_internet_topology(10, Rng(b"x"), prefixes_per_as=0)


@pytest.mark.slow
class TestInternetScale:
    """The 10^5 sweep nightly CI runs (slow-marked out of tier-1)."""

    def test_hundred_thousand_ases(self):
        topology, regions = generate_internet_topology(
            100_000, Rng(b"topo-xl"), n_regions=16
        )
        assert len(topology.asns) == 100_000
        assert set(regions.values()) == set(range(16))
        degrees = sorted(
            (len(topology.rel[asn]) for asn in topology.asns), reverse=True
        )
        assert degrees[0] >= 150
        assert degrees[len(degrees) // 2] <= 4
