"""Multi-prefix ASes: the controller and oracle agree per prefix."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import PolicyError
from repro.routing.bgp import DistributedBgpSimulator
from repro.routing.controller import InterDomainController
from repro.routing.policy import policy_from_topology
from repro.routing.topology import generate_topology


def multiprefix_policies(n=10, k=3, seed=b"multi"):
    topology = generate_topology(n, Rng(seed), prefixes_per_as=k)
    return topology, {
        asn: policy_from_topology(topology, asn) for asn in topology.asns
    }


class TestMultiPrefix:
    def test_prefix_counts(self):
        topology, _ = multiprefix_policies(n=8, k=3)
        assert len(topology.all_prefixes()) == 24
        for asn in topology.asns:
            assert len(topology.prefixes[asn]) == 3

    def test_controller_matches_oracle(self):
        _, policies = multiprefix_policies(n=10, k=2)
        oracle = DistributedBgpSimulator(policies)
        oracle.run()
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        for asn in policies:
            assert controller.routes_for(asn) == oracle.best_routes(asn)

    def test_all_prefixes_reachable(self):
        topology, policies = multiprefix_policies(n=8, k=2)
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        total = len(topology.all_prefixes())
        for asn in topology.asns:
            own = len(topology.prefixes[asn])
            assert len(controller.routes_for(asn)) == total - own

    def test_same_origin_prefixes_share_paths(self):
        """All prefixes of one origin are topologically equivalent, so
        each AS reaches them over the same AS path."""
        _, policies = multiprefix_policies(n=10, k=3)
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        for asn in policies:
            by_origin = {}
            for route in controller.routes_for(asn).values():
                by_origin.setdefault(route.origin, set()).add(route.path)
            for origin, paths in by_origin.items():
                assert len(paths) == 1, (asn, origin)

    def test_invalid_prefix_count_rejected(self):
        with pytest.raises(PolicyError):
            generate_topology(5, Rng(b"x"), prefixes_per_as=0)
