"""Full SGX and native deployments (integration; small topologies)."""

import pytest

from repro.routing.bgp import DistributedBgpSimulator
from repro.routing.deployment import run_native_routing, run_sgx_routing
from repro.routing.verification import Predicate, PredicateKind

N = 6
SEED = b"deploy-test"


@pytest.fixture(scope="module")
def sgx_run():
    return run_sgx_routing(n_ases=N, seed=SEED)


@pytest.fixture(scope="module")
def native_run():
    return run_native_routing(n_ases=N, seed=SEED)


class TestSgxDeployment:
    def test_every_as_receives_routes(self, sgx_run):
        assert set(sgx_run.routes) == set(sgx_run.topology.asns)
        for asn, routes in sgx_run.routes.items():
            assert routes, f"AS{asn} received no routes"

    def test_routes_match_distributed_oracle(self, sgx_run):
        oracle = DistributedBgpSimulator(sgx_run.policies)
        oracle.run()
        for asn in sgx_run.topology.asns:
            assert sgx_run.routes[asn] == oracle.best_routes(asn)

    def test_one_attestation_per_as_plus_mutual(self, sgx_run):
        # Table 3: inter-domain routing needs one attestation per AS
        # controller; mutual attestation doubles it.
        assert sgx_run.attestations == 2 * N

    def test_steady_state_has_sgx_costs(self, sgx_run):
        assert sgx_run.controller_steady.sgx_instructions > 0
        assert sgx_run.controller_steady.normal_instructions > 0
        assert sgx_run.controller_steady.allocations > 0

    def test_onetime_cost_dominated_by_dh(self, sgx_run):
        # Attestation includes DH param generation: the one-time cost
        # must dwarf a single modexp.
        assert sgx_run.controller_onetime.normal_instructions > 100e6


class TestNativeBaseline:
    def test_native_routes_match_sgx_routes(self, sgx_run, native_run):
        assert native_run.routes == sgx_run.routes

    def test_native_has_no_sgx_instructions(self, native_run):
        assert native_run.controller_steady.sgx_instructions == 0
        for counter in native_run.as_steady.values():
            assert counter.sgx_instructions == 0

    def test_native_no_attestations(self, native_run):
        assert native_run.attestations == 0


class TestOverhead:
    """The Table 4 shape: SGX adds meaningful but bounded overhead."""

    def test_controller_overhead_positive(self, sgx_run, native_run):
        sgx = sgx_run.controller_steady.normal_instructions
        native = native_run.controller_steady.normal_instructions
        assert sgx > native

    def test_controller_overhead_bounded(self, sgx_run, native_run):
        # Paper: 82% more instructions.  Accept a generous band; the
        # calibrated bench pins it tighter at n=30.
        sgx = sgx_run.controller_steady.normal_instructions
        native = native_run.controller_steady.normal_instructions
        assert sgx / native < 5.0

    def test_as_local_overhead_positive(self, sgx_run, native_run):
        sgx_avg = sum(
            c.normal_instructions for c in sgx_run.as_steady.values()
        ) / len(sgx_run.as_steady)
        native_avg = sum(
            c.normal_instructions for c in native_run.as_steady.values()
        ) / len(native_run.as_steady)
        assert sgx_avg > native_avg


class TestPredicatesOverDeployment:
    def test_predicate_flow_end_to_end(self):
        # Find a (subject, partner, prefix) that is true by construction.
        probe = run_native_routing(n_ases=N, seed=SEED)
        subject = probe.topology.asns[-1]
        route = next(iter(probe.routes[subject].values()))
        partner = route.learned_from
        predicate = Predicate(
            "agreement-1",
            PredicateKind.PREFERS_VIA,
            subject,
            partner,
            route.prefix,
        )
        result = run_sgx_routing(
            n_ases=N,
            seed=SEED,
            predicates=[(subject, predicate), (partner, predicate)],
            queries=[(subject, "agreement-1")],
        )
        assert result.predicate_results[subject]["agreement-1"] is True
