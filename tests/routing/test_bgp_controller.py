"""Route computation: decision process, oracle cross-check, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import Rng
from repro.errors import PolicyError
from repro.routing.bgp import DistributedBgpSimulator, Route, decide
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.policy import LocalPolicy
from repro.routing.relationships import Relationship
from repro.routing.topology import AsTopology


class TestDecisionProcess:
    def test_higher_local_pref_wins(self):
        a = Route("p", (1, 9), local_pref=100)
        b = Route("p", (2,), local_pref=90)  # shorter but less preferred
        assert decide([a, b]) == a

    def test_shorter_path_breaks_pref_tie(self):
        a = Route("p", (1, 9), local_pref=100)
        b = Route("p", (2,), local_pref=100)
        assert decide([a, b]) == b

    def test_lowest_neighbor_breaks_full_tie(self):
        a = Route("p", (5, 9), local_pref=100)
        b = Route("p", (3, 9), local_pref=100)
        assert decide([a, b]) == b

    def test_self_originated_always_wins(self):
        own = Route("p", (), local_pref=0)
        other = Route("p", (1,), local_pref=500)
        assert decide([own, other]) == own

    def test_empty_candidates(self):
        assert decide([]) is None

    def test_route_encode_decode(self):
        route = Route("10.3.0.0/16", (4, 7, 3), local_pref=100)
        assert Route.decode(route.encode()) == route


def tiny_topology():
    """1 is provider of 2 and 3; 2 and 3 peer."""
    topo = AsTopology.empty()
    for asn in (1, 2, 3):
        topo.add_as(asn)
    topo.add_link(1, 2, Relationship.CUSTOMER)
    topo.add_link(1, 3, Relationship.CUSTOMER)
    topo.add_link(2, 3, Relationship.PEER)
    return topo


def policies_of(topo):
    from repro.routing.policy import policy_from_topology

    return {asn: policy_from_topology(topo, asn) for asn in topo.asns}


class TestDistributedOracle:
    def test_tiny_topology_routes(self):
        sim = DistributedBgpSimulator(policies_of(tiny_topology()))
        sim.run()
        # 2 reaches 3's prefix directly over the peering (preferred
        # over the provider path through 1).
        best = sim.best_routes(2)["10.3.0.0/16"]
        assert best.path == (3,)
        # 1 reaches both customers directly.
        assert sim.best_routes(1)["10.2.0.0/16"].path == (2,)

    def test_valley_free_property(self):
        topo, policies = build_policies(25, b"valley-seed", override_fraction=0)
        sim = DistributedBgpSimulator(policies)
        sim.run()
        for asn in topo.asns:
            for route in sim.best_routes(asn).values():
                chain = [asn] + list(route.path)
                for i in range(1, len(chain) - 1):
                    node = chain[i]
                    got_from = chain[i + 1]
                    gave_to = chain[i - 1]
                    ok = (
                        topo.relationship(node, got_from) is Relationship.CUSTOMER
                        or topo.relationship(node, gave_to) is Relationship.CUSTOMER
                    )
                    assert ok, f"valley at AS{node} in {chain}"

    def test_full_reachability_in_connected_topology(self):
        topo, policies = build_policies(15, b"reach-seed", override_fraction=0)
        sim = DistributedBgpSimulator(policies)
        sim.run()
        n_prefixes = len(topo.all_prefixes())
        for asn in topo.asns:
            # every AS reaches every other prefix (hierarchy is connected)
            assert len(sim.best_routes(asn)) == n_prefixes - len(topo.prefixes[asn])

    def test_no_loops_in_paths(self):
        _, policies = build_policies(20, b"loop-seed")
        sim = DistributedBgpSimulator(policies)
        sim.run()
        for asn in policies:
            for route in sim.best_routes(asn).values():
                assert len(set(route.path)) == len(route.path)
                assert asn not in route.path


class TestControllerOracleAgreement:
    """The paper validated the controller with GNS3; we use the
    distributed simulator as the independent oracle."""

    @pytest.mark.parametrize("n,seed", [(5, b"a"), (10, b"b"), (30, b"c"), (30, b"d")])
    def test_same_best_routes(self, n, seed):
        _, policies = build_policies(n, seed)
        oracle = DistributedBgpSimulator(policies)
        oracle.run()
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        for asn in policies:
            assert controller.routes_for(asn) == oracle.best_routes(asn), (
                f"disagreement at AS{asn} (n={n}, seed={seed!r})"
            )

    def test_agreement_with_pref_overrides(self):
        _, policies = build_policies(20, b"override-seed", override_fraction=0.5)
        oracle = DistributedBgpSimulator(policies)
        oracle.run()
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        for asn in policies:
            assert controller.routes_for(asn) == oracle.best_routes(asn)


class TestControllerValidation:
    def test_duplicate_policy_rejected(self):
        _, policies = build_policies(5, b"dup")
        controller = InterDomainController()
        first = next(iter(policies.values()))
        controller.submit_policy(first)
        with pytest.raises(PolicyError):
            controller.submit_policy(first)

    def test_asymmetric_relationship_rejected(self):
        controller = InterDomainController()
        controller.submit_policy(
            LocalPolicy(1, {2: Relationship.CUSTOMER}, ["10.1.0.0/16"])
        )
        controller.submit_policy(
            LocalPolicy(2, {1: Relationship.CUSTOMER}, ["10.2.0.0/16"])
        )
        with pytest.raises(PolicyError, match="mismatch"):
            controller.compute_routes()

    def test_missing_reverse_edge_rejected(self):
        controller = InterDomainController()
        controller.submit_policy(
            LocalPolicy(1, {2: Relationship.CUSTOMER}, ["10.1.0.0/16"])
        )
        controller.submit_policy(LocalPolicy(2, {}, ["10.2.0.0/16"]))
        with pytest.raises(PolicyError, match="vice versa"):
            controller.compute_routes()

    def test_routes_for_non_participant(self):
        controller = InterDomainController()
        with pytest.raises(PolicyError):
            controller.routes_for(99)

    def test_stats_accumulate(self):
        _, policies = build_policies(10, b"stats")
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        assert controller.stats.prefixes == 10
        assert controller.stats.route_updates > 0
        assert controller.stats.routes_stored > 0

    def test_alloc_hook_called_per_stored_route(self):
        _, policies = build_policies(8, b"alloc")
        calls = []
        controller = InterDomainController(alloc_hook=calls.append)
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        assert len(calls) == controller.stats.routes_stored


@settings(max_examples=8, deadline=None)
@given(n=st.integers(min_value=3, max_value=25), seed=st.integers(0, 10_000))
def test_property_controller_matches_oracle(n, seed):
    _, policies = build_policies(n, repr(seed).encode())
    oracle = DistributedBgpSimulator(policies)
    oracle.run()
    controller = InterDomainController()
    for policy in policies.values():
        controller.submit_policy(policy)
    for asn in policies:
        assert controller.routes_for(asn) == oracle.best_routes(asn)
