"""Golden baselines: pin the measured Table 1-4 numbers.

The reproduction is deterministic, so the numbers in EXPERIMENTS.md
are exactly reproducible.  These tests pin them: SGX-instruction and
crossing counts exactly (they count discrete protocol events — any
change is a behavior change), normal-instruction totals within a small
explicit tolerance (so a deliberate cost-model recalibration trips
these tests and forces EXPERIMENTS.md to be regenerated, instead of
silently invalidating the published tables).

The switchless subsystem must not move any of these: it is opt-in and
every experiment here runs with it off.
"""

import pytest

from repro.experiments import run_table1, run_table2, run_table3, run_table4

#: Relative tolerance for normal-instruction totals.  Tight enough
#: that any real cost-model change fails; loose enough that a counting
#: tweak in one primitive does not require touching every baseline.
NORMAL_RTOL = 0.02

# -- measured values (EXPERIMENTS.md) ---------------------------------------

TABLE1_BASELINE = {
    # (role, with_dh): (sgx_instructions, normal_instructions)
    ("target", False): (18, 153_714_844),
    ("quoting", False): (16, 124_711_794),
    ("challenger", False): (10, 123_768_500),
    ("target", True): (20, 4_337_866_494),
    ("quoting", True): (16, 124_711_794),
    ("challenger", True): (12, 347_951_350),
}

TABLE2_BASELINE = {
    # (n_packets, with_crypto): (sgx_instructions, normal_instructions)
    (1, False): (6, 13_000),
    (1, True): (6, 96_933),
    (100, False): (204, 135_958),
    (100, True): (204, 965_658),
}

TABLE3_BASELINE = {
    "routing": 10,
    "tor_authority": 24,
    "tor_client": 3,
    "middlebox": 3,
}

TABLE4_BASELINE = {
    "idc_sgx_normal": 135_322_841,
    "idc_sgx_u": 590,
    "idc_crossings": 167,
    "idc_allocations": 870,
    "idc_native_normal": 72_934_824,
    "aslc_sgx_normal": 22_152_880.2,
    "aslc_sgx_u": 22.0,
    "aslc_native_normal": 12_964_020.8,
}


class TestTable1Baseline:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table1()

    @pytest.mark.parametrize("role,with_dh", sorted(TABLE1_BASELINE))
    def test_pinned(self, results, role, with_dh):
        expected_sgx, expected_normal = TABLE1_BASELINE[(role, with_dh)]
        counter = results[with_dh][role]
        assert counter.sgx_instructions == expected_sgx
        assert counter.normal_instructions == pytest.approx(
            expected_normal, rel=NORMAL_RTOL
        )

    def test_no_switchless_calls(self, results):
        for per_role in results.values():
            for counter in per_role.values():
                assert counter.switchless_calls == 0


class TestTable2Baseline:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table2()

    @pytest.mark.parametrize("n_packets,with_crypto", sorted(TABLE2_BASELINE))
    def test_pinned(self, results, n_packets, with_crypto):
        expected_sgx, expected_normal = TABLE2_BASELINE[(n_packets, with_crypto)]
        counter = results[(n_packets, with_crypto)]
        assert counter.sgx_instructions == expected_sgx
        assert counter.normal_instructions == pytest.approx(
            expected_normal, rel=NORMAL_RTOL
        )


class TestTable3Baseline:
    def test_pinned(self):
        results = run_table3()
        for design, expected in TABLE3_BASELINE.items():
            assert results[design]["measured"] == expected, design
            assert results[design]["measured"] == results[design]["expected"]


class TestTable4Baseline:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table4()

    def test_controller_pinned(self, results):
        sgx, native = results
        c = sgx.controller_steady
        assert c.sgx_instructions == TABLE4_BASELINE["idc_sgx_u"]
        assert c.enclave_crossings == TABLE4_BASELINE["idc_crossings"]
        assert c.allocations == TABLE4_BASELINE["idc_allocations"]
        assert c.switchless_calls == 0
        assert c.normal_instructions == pytest.approx(
            TABLE4_BASELINE["idc_sgx_normal"], rel=NORMAL_RTOL
        )
        assert native.controller_steady.normal_instructions == pytest.approx(
            TABLE4_BASELINE["idc_native_normal"], rel=NORMAL_RTOL
        )

    def test_as_local_pinned(self, results):
        sgx, native = results
        aslc_sgx = sum(
            c.normal_instructions for c in sgx.as_steady.values()
        ) / len(sgx.as_steady)
        aslc_sgx_u = sum(
            c.sgx_instructions for c in sgx.as_steady.values()
        ) / len(sgx.as_steady)
        aslc_native = sum(
            c.normal_instructions for c in native.as_steady.values()
        ) / len(native.as_steady)
        assert aslc_sgx_u == TABLE4_BASELINE["aslc_sgx_u"]
        assert aslc_sgx == pytest.approx(
            TABLE4_BASELINE["aslc_sgx_normal"], rel=NORMAL_RTOL
        )
        assert aslc_native == pytest.approx(
            TABLE4_BASELINE["aslc_native_normal"], rel=NORMAL_RTOL
        )

    def test_overheads_in_paper_range(self, results):
        # The paper reports 82% (inter-domain) and 69% (AS-local)
        # steady-state overhead; the reproduction should stay in that
        # neighborhood, not just be internally consistent.
        sgx, native = results
        idc_overhead = (
            sgx.controller_steady.normal_instructions
            / native.controller_steady.normal_instructions
            - 1
        )
        aslc_sgx = sum(
            c.normal_instructions for c in sgx.as_steady.values()
        ) / len(sgx.as_steady)
        aslc_native = sum(
            c.normal_instructions for c in native.as_steady.values()
        ) / len(native.as_steady)
        aslc_overhead = aslc_sgx / aslc_native - 1
        assert 0.6 < idc_overhead < 1.1
        assert 0.5 < aslc_overhead < 0.9

    def test_routes_match_native(self, results):
        sgx, native = results
        assert sgx.routes == native.routes


class TestKernelAndBurstDifferential:
    """Satellite coverage for the kernel rewrite: every rendered golden
    table is byte-identical on the fast kernel, the frozen reference
    scheduler, and with burst-coalesced charging disabled (the
    per-primitive charge sequence is the oracle for ``charge_burst``).
    """

    @staticmethod
    def _burst_off():
        import contextlib

        from repro.cost import accountant as accountant_mod

        @contextlib.contextmanager
        def ctx():
            prior = accountant_mod.burst_enabled()
            accountant_mod.configure_burst(False)
            try:
                yield
            finally:
                accountant_mod.configure_burst(prior)

        return ctx()

    def test_table3_bytes_across_kernels(self):
        from repro.experiments import format_table3
        from repro.net.sim import use_kernel

        fast = format_table3(run_table3())
        with use_kernel("reference"):
            assert format_table3(run_table3()) == fast

    def test_table4_bytes_across_kernels_and_burst(self):
        from repro.experiments import format_table4
        from repro.net.sim import use_kernel

        fast = format_table4(*run_table4())
        with use_kernel("reference"):
            assert format_table4(*run_table4()) == fast
        with self._burst_off():
            assert format_table4(*run_table4()) == fast

    def test_table2_bytes_with_burst_off(self):
        from repro.experiments import format_table2

        default = format_table2(run_table2())
        with self._burst_off():
            assert format_table2(run_table2()) == default

    @pytest.mark.slow
    def test_table1_bytes_across_kernels_and_burst(self):
        from repro.experiments import format_table1
        from repro.net.sim import use_kernel

        fast = format_table1(run_table1())
        with use_kernel("reference"):
            assert format_table1(run_table1()) == fast
        with self._burst_off():
            assert format_table1(run_table1()) == fast

    @pytest.mark.slow
    def test_table2_bytes_across_kernels(self):
        from repro.experiments import format_table2
        from repro.net.sim import use_kernel

        fast = format_table2(run_table2())
        with use_kernel("reference"):
            assert format_table2(run_table2()) == fast
