"""End-to-end attested sessions over the simulated network."""

import pytest

from tests.fixtures import make_author_key, make_authority

from repro.core import (
    AttestedServer,
    EnclaveNode,
    SecureApplicationProgram,
    open_attested_session,
)
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import AttestationError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.sgx.attestation import AttestationConfig, IdentityPolicy
from repro.sgx.measurement import measure_program
from repro.sgx.quoting import AttestationAuthority


class EchoServiceProgram(SecureApplicationProgram):
    """Replies to every secure message with an 'echo:' prefix."""

    def _on_secure_message(self, session_id, payload):
        return b"echo:" + payload


class GreeterClientProgram(SecureApplicationProgram):
    """Sends a greeting when a channel opens; records replies."""

    GREETING = b"hello from inside the enclave"

    def on_load(self, ctx):
        super().on_load(ctx)
        self._received = []

    def _on_session_established(self, session_id):
        self._send_secure(session_id, self.GREETING)

    def _on_secure_message(self, session_id, payload):
        self._received.append(payload)
        return None

    def received(self):
        return list(self._received)


class TamperedEchoProgram(EchoServiceProgram):
    """A modified build: snoops on messages (different MRENCLAVE)."""

    def _on_secure_message(self, session_id, payload):
        self._stolen = payload
        return b"echo:" + payload


@pytest.fixture()
def world():
    sim = Simulator()
    network = Network(sim, rng=Rng(b"core-net"), default_link=LinkParams(latency=0.002))
    authority = make_authority(b"core-authority")
    author = make_author_key(b"core-author")
    return sim, network, authority, author


def build_pair(world, server_program, client_policy):
    sim, network, authority, author = world
    server_node = EnclaveNode(network, "server", authority, rng=Rng(b"server-node"))
    client_node = EnclaveNode(network, "client", authority, rng=Rng(b"client-node"))
    server_enclave = server_node.load(server_program, author_key=author, name="svc")
    client_enclave = client_node.load(
        GreeterClientProgram(), author_key=author, name="cli"
    )
    info = authority.verification_info()
    server_enclave.ecall("configure_trust", info)
    client_enclave.ecall("configure_trust", info, client_policy)
    AttestedServer(server_node, server_enclave, port=443)
    return server_node, client_node, server_enclave, client_enclave


class TestAttestedSessions:
    def test_echo_roundtrip(self, world):
        sim = world[0]
        policy = IdentityPolicy.for_mrenclave(measure_program(EchoServiceProgram))
        _, client_node, _, client_enclave = build_pair(
            world, EchoServiceProgram(), policy
        )
        outcome = {}

        def client_proc():
            session = yield from open_attested_session(
                client_node, client_enclave, "server", 443
            )
            outcome["established"] = session.established
            outcome["peer"] = session.peer_identity()
            yield sim.sleep(1.0)  # let the echo come back
            outcome["received"] = client_enclave.ecall("received")

        sim.spawn(client_proc())
        sim.run(until=60.0)
        assert outcome["established"]
        assert outcome["peer"].mrenclave == measure_program(EchoServiceProgram)
        assert outcome["received"] == [b"echo:" + GreeterClientProgram.GREETING]

    def test_plaintext_never_on_the_wire(self, world):
        sim, network, _, _ = world
        policy = IdentityPolicy.for_mrenclave(measure_program(EchoServiceProgram))
        _, client_node, _, client_enclave = build_pair(
            world, EchoServiceProgram(), policy
        )
        wire = []
        network.tap = lambda d: (wire.append(d.payload), d)[1]

        def client_proc():
            yield from open_attested_session(
                client_node, client_enclave, "server", 443
            )
            yield sim.sleep(1.0)

        sim.spawn(client_proc())
        sim.run(until=60.0)
        blob = b"".join(wire)
        assert GreeterClientProgram.GREETING not in blob
        assert b"echo:" not in blob

    def test_tampered_server_rejected(self, world):
        sim = world[0]
        # Client pins the audited echo build; server runs the snooper.
        policy = IdentityPolicy.for_mrenclave(measure_program(EchoServiceProgram))
        _, client_node, _, client_enclave = build_pair(
            world, TamperedEchoProgram(), policy
        )
        failures = []

        def client_proc():
            try:
                yield from open_attested_session(
                    client_node, client_enclave, "server", 443
                )
            except AttestationError as exc:
                failures.append(str(exc))

        sim.spawn(client_proc())
        sim.run(until=60.0)
        assert failures and "MRENCLAVE" in failures[0]

    def test_mutual_attestation_over_network(self, world):
        sim = world[0]
        policy = IdentityPolicy.for_mrenclave(measure_program(EchoServiceProgram))
        server_node, client_node, server_enclave, client_enclave = build_pair(
            world, EchoServiceProgram(), policy
        )
        # Server additionally demands the audited client build.
        info = world[2].verification_info()
        server_enclave.ecall(
            "configure_trust",
            info,
            IdentityPolicy.for_mrenclave(measure_program(GreeterClientProgram)),
        )
        outcome = {}

        def client_proc():
            session = yield from open_attested_session(
                client_node,
                client_enclave,
                "server",
                443,
                config=AttestationConfig(mutual=True),
            )
            outcome["established"] = session.established

        sim.spawn(client_proc())
        sim.run(until=60.0)
        assert outcome["established"]

    def test_non_sgx_node_cannot_serve(self, world):
        sim, network, authority, author = world
        legacy = EnclaveNode(network, "legacy", authority=None, rng=Rng(b"legacy"))
        with pytest.raises(Exception):
            # Loading is possible (author-signed) but quoting is not;
            # the attestation inside ra_challenge must fail.
            enclave = legacy.load(EchoServiceProgram(), author_key=author)
            enclave.ecall("configure_trust", authority.verification_info())
            enclave.ecall("session_accept", "s1")
            from repro.sgx.attestation import _encode_challenge

            enclave.ecall(
                "session_handle",
                "s1",
                b"\x00" + _encode_challenge(b"\x01" * 32, AttestationConfig()),
            )

    def test_session_ids_must_be_unique(self, world):
        sim, network, authority, author = world
        node = EnclaveNode(network, "solo", authority, rng=Rng(b"solo"))
        enclave = node.load(EchoServiceProgram(), author_key=author)
        enclave.ecall("configure_trust", authority.verification_info())
        enclave.ecall("session_accept", "dup")
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            enclave.ecall("session_accept", "dup")
