"""Untrusted (non-enclave) client attested sessions."""

import pytest

from tests.fixtures import make_author_key, make_authority

from repro.core import AttestedServer, EnclaveNode, SecureApplicationProgram
from repro.core.untrusted import open_untrusted_session
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import AttestationError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.sgx.attestation import IdentityPolicy
from repro.sgx.measurement import measure_program
from repro.sgx.quoting import AttestationAuthority


class UpperProgram(SecureApplicationProgram):
    def _on_secure_message(self, session_id, payload):
        return payload.upper()


class OtherProgram(SecureApplicationProgram):
    def _on_secure_message(self, session_id, payload):
        return b"other"


def build(server_program):
    sim = Simulator()
    network = Network(sim, rng=Rng(b"unt"), default_link=LinkParams(latency=0.002))
    authority = make_authority(b"unt-auth")
    author = make_author_key(b"unt-author")
    node = EnclaveNode(network, "server", authority, rng=Rng(b"unt-node"))
    enclave = node.load(server_program, author_key=author, name="svc")
    enclave.ecall("configure_trust", authority.verification_info())
    AttestedServer(node, enclave, 443)
    legacy = network.add_host("legacy-laptop")
    return sim, network, authority, legacy


class TestUntrustedClient:
    def test_request_response_over_secure_channel(self):
        sim, _, authority, legacy = build(UpperProgram())
        out = {}

        def proc():
            session = yield from open_untrusted_session(
                legacy,
                "server",
                443,
                authority.verification_info(),
                IdentityPolicy.for_mrenclave(measure_program(UpperProgram)),
                Rng(b"client"),
            )
            out["peer"] = session.peer_identity.mrenclave
            out["reply"] = yield from session.request(b"shout this")

        sim.spawn(proc())
        sim.run(until=60.0)
        assert out["reply"] == b"SHOUT THIS"
        assert out["peer"] == measure_program(UpperProgram)

    def test_wrong_build_rejected(self):
        sim, _, authority, legacy = build(OtherProgram())
        failures = []

        def proc():
            try:
                yield from open_untrusted_session(
                    legacy,
                    "server",
                    443,
                    authority.verification_info(),
                    IdentityPolicy.for_mrenclave(measure_program(UpperProgram)),
                    Rng(b"client"),
                )
            except AttestationError as exc:
                failures.append(str(exc))

        sim.spawn(proc())
        sim.run(until=60.0)
        assert failures and "MRENCLAVE" in failures[0]

    def test_plaintext_absent_from_wire(self):
        sim, network, authority, legacy = build(UpperProgram())
        wire = []
        network.tap = lambda d: (wire.append(d.payload), d)[1]

        def proc():
            session = yield from open_untrusted_session(
                legacy,
                "server",
                443,
                authority.verification_info(),
                IdentityPolicy.accept_any(),
                Rng(b"client"),
            )
            yield from session.request(b"very secret request")

        sim.spawn(proc())
        sim.run(until=60.0)
        joined = b"".join(wire)
        assert b"very secret request" not in joined
        assert b"VERY SECRET REQUEST" not in joined

    def test_mutual_refused_without_enclave(self):
        from repro.sgx.attestation import AttestationConfig, ChallengerAttestor

        authority = AttestationAuthority(Rng(b"mut"))
        from repro.sgx.platform import SgxPlatform

        SgxPlatform("boot", authority, rng=Rng(b"boot"))
        with pytest.raises(AttestationError, match="enclave"):
            ChallengerAttestor(
                ctx=None,
                verification_info=authority.verification_info(),
                policy=IdentityPolicy.accept_any(),
                config=AttestationConfig(mutual=True),
                rng=Rng(b"x"),
            )

    def test_rng_required_without_ctx(self):
        from repro.sgx.attestation import ChallengerAttestor

        authority = AttestationAuthority(Rng(b"rng-req"))
        from repro.sgx.platform import SgxPlatform

        SgxPlatform("boot2", authority, rng=Rng(b"boot2"))
        with pytest.raises(AttestationError, match="rng"):
            ChallengerAttestor(
                ctx=None,
                verification_info=authority.verification_info(),
                policy=IdentityPolicy.accept_any(),
            )
