"""Software identity registry and trust anchor tests."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import AttestationError
from repro.core.identity import (
    ReleaseCertificate,
    SoftwareIdentityRegistry,
    SoftwarePublisher,
)
from repro.core.trust import TrustAnchor
from repro.sgx.measurement import compute_mrenclave, measure_program, program_code_bytes
from repro.sgx.platform import SgxPlatform
from repro.sgx.quoting import AttestationAuthority
from repro.sgx.runtime import EnclaveProgram
from repro.crypto.rsa import generate_rsa_keypair


class ReleaseV1(EnclaveProgram):
    def work(self):
        return 1


class ReleaseV2(EnclaveProgram):
    def work(self):
        return 2


@pytest.fixture(scope="module")
def publisher():
    return SoftwarePublisher("tor-foundation", Rng(b"publisher-tests"))


class TestOfflineMeasurement:
    def test_compute_matches_platform_load(self):
        """The auditor's offline measurement equals the loaded one."""
        platform = SgxPlatform("probe", rng=Rng(b"probe-measure"))
        author = generate_rsa_keypair(512, Rng(b"author-measure"))
        enclave = platform.load_enclave(ReleaseV1(), author_key=author)
        assert measure_program(ReleaseV1) == enclave.identity.mrenclave

    def test_compute_mrenclave_multi_page(self):
        small = compute_mrenclave(b"x" * 100)
        large = compute_mrenclave(b"x" * 10_000)
        assert small != large
        assert len(small) == 32


class TestReleaseCertificates:
    def test_certify_and_verify(self, publisher):
        cert = publisher.certify_program("tor", ReleaseV1)
        cert.verify(publisher.public_key)
        assert cert.mrenclave == measure_program(ReleaseV1)

    def test_encode_decode(self, publisher):
        cert = publisher.certify_program("tor", ReleaseV1, version="0.2.6")
        decoded = ReleaseCertificate.decode(cert.encode())
        assert decoded == cert
        decoded.verify(publisher.public_key)

    def test_wrong_publisher_rejected(self, publisher):
        other = SoftwarePublisher("impostor", Rng(b"impostor"))
        cert = other.certify_program("tor", ReleaseV1)
        with pytest.raises(AttestationError):
            cert.verify(publisher.public_key)

    def test_tampered_certificate_rejected(self, publisher):
        import dataclasses

        cert = publisher.certify_program("tor", ReleaseV1)
        forged = dataclasses.replace(cert, version="evil")
        with pytest.raises(AttestationError):
            forged.verify(publisher.public_key)

    def test_bad_measurement_length(self, publisher):
        with pytest.raises(AttestationError):
            publisher.certify_measurement("tor", "1", b"short")


class TestRegistry:
    def test_add_and_lookup(self, publisher):
        registry = SoftwareIdentityRegistry(publisher.public_key)
        registry.add(publisher.certify_program("tor", ReleaseV1, "1"))
        registry.add(publisher.certify_program("tor", ReleaseV2, "2"))
        measurements = registry.measurements("tor")
        assert measure_program(ReleaseV1) in measurements
        assert measure_program(ReleaseV2) in measurements

    def test_rejects_foreign_certificates(self, publisher):
        registry = SoftwareIdentityRegistry(publisher.public_key)
        impostor = SoftwarePublisher("impostor", Rng(b"imp2"))
        with pytest.raises(AttestationError):
            registry.add(impostor.certify_program("tor", ReleaseV1))

    def test_unknown_release_raises(self, publisher):
        registry = SoftwareIdentityRegistry(publisher.public_key)
        with pytest.raises(AttestationError, match="no certified"):
            registry.measurements("ghost")

    def test_revoke_version(self, publisher):
        registry = SoftwareIdentityRegistry(publisher.public_key)
        registry.add(publisher.certify_program("tor", ReleaseV1, "1"))
        registry.add(publisher.certify_program("tor", ReleaseV2, "2"))
        assert registry.revoke_version("tor", "1") == 1
        assert registry.measurements("tor") == frozenset(
            {measure_program(ReleaseV2)}
        )

    def test_revoke_last_version_empties_release(self, publisher):
        registry = SoftwareIdentityRegistry(publisher.public_key)
        registry.add(publisher.certify_program("solo", ReleaseV1, "1"))
        registry.revoke_version("solo", "1")
        assert "solo" not in registry.releases()


class TestTrustAnchor:
    def test_policy_accepts_certified_build_only(self, publisher):
        authority = AttestationAuthority(Rng(b"anchor-authority"))
        SgxPlatform("qe-bootstrap", authority, rng=Rng(b"qe-bootstrap"))
        registry = SoftwareIdentityRegistry(publisher.public_key)
        registry.add(publisher.certify_program("ctrl", ReleaseV1))
        anchor = TrustAnchor(authority, registry)

        policy = anchor.policy_for("ctrl")
        from repro.sgx.measurement import EnclaveIdentity

        good = EnclaveIdentity(
            mrenclave=measure_program(ReleaseV1), mrsigner=b"\x00" * 32, isv_svn=1
        )
        bad = EnclaveIdentity(
            mrenclave=measure_program(ReleaseV2), mrsigner=b"\x00" * 32, isv_svn=1
        )
        policy.check(good)
        with pytest.raises(AttestationError):
            policy.check(bad)

    def test_verification_info_reflects_revocation(self):
        authority = AttestationAuthority(Rng(b"anchor-rl"))
        SgxPlatform("qe-boot2", authority, rng=Rng(b"qe-boot2"))
        publisher = SoftwarePublisher("p", Rng(b"p"))
        anchor = TrustAnchor(authority, SoftwareIdentityRegistry(publisher.public_key))
        assert anchor.verification_info.revocation_list == frozenset()
        authority.revoke_platform(12345)
        assert 12345 in anchor.verification_info.revocation_list
