"""Differential scheduler-conformance suite: fast kernel vs reference.

The fast two-lane calendar-queue kernel (:mod:`repro.net.sim`) must be
*observationally identical* to the frozen pre-rewrite heap scheduler
(:mod:`repro.net.sim_reference`).  Hypothesis generates small
process/queue/timeout programs; an interpreter runs each program
lock-step on both kernels and the observation logs must match exactly:

* event execution order and the simulated clock at every step;
* queue deliveries, timeout firings, join results and re-raised
  process exceptions (type and message);
* ``run()`` return value, final ``now``, orphan-failure aborts;
* the per-domain integer cost counters charged by the program
  (``CostAccountant`` with exact-integer reconciliation is the
  oracle — any divergence in execution order shows up as a
  different counter total).

Budget: ``REPRO_CONFORMANCE_EXAMPLES`` scales the number of generated
programs (default 25 per property for tier-1 speed; the nightly job
raises it).  The ``slow``-marked variant multiplies the budget by 8.
A falsified program is also written to ``conformance-failures/`` as a
standalone repr so CI can upload it as an artifact.
"""

import itertools
import os
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.accountant import CostAccountant
from repro.errors import SimTimeout
from repro.net import sim, sim_reference

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))
FAILURE_DIR = pathlib.Path(__file__).resolve().parents[2] / "conformance-failures"

_SPAWN_BUDGET = 16  # bounds mutually-recursive spawn ops

# -- the program interpreter ------------------------------------------------
#
# A program is a list of process specs; a spec is a list of ops:
#   ("sleep", dt)          yield sim.sleep(dt)
#   ("yield",)             yield None (zero-delay reschedule)
#   ("put", q)             put onto queue q
#   ("get", q, timeout)    blocking get (timeout may be None)
#   ("spawn", spec_idx)    launch a fresh instance of program[spec_idx]
#   ("join", k)            yield the k-th process spawned so far
#   ("return", v)          finish early with result v
#   ("raise",)             die with ValueError (orphan unless joined)
#
# The interpreter is deliberately kernel-agnostic: it only uses the
# public Simulator/MessageQueue/Process API, so the same closure tree
# drives both kernels and every observable difference is the kernel's.


def run_program(sim_mod, program, until=None, max_events=10_000_000):
    simulator = sim_mod.Simulator()
    accountant = CostAccountant("conformance")
    queues = [simulator.queue(f"q{i}") for i in range(2)]
    log = []
    spawned = []
    budget = [_SPAWN_BUDGET]
    pids = itertools.count()

    def launch(spec_idx):
        pid = next(pids)
        process = simulator.spawn(body(program[spec_idx], pid), f"p{pid}")
        spawned.append(process)
        return process

    def body(spec, pid):
        domain = f"dom{pid % 3}"
        for step, op in enumerate(spec):
            log.append(("at", pid, step, op[0], simulator.now))
            kind = op[0]
            with accountant.attribute(domain):
                accountant.charge_normal(1)
                if kind == "sleep":
                    accountant.charge_sgx(2)
                elif kind == "put":
                    accountant.charge_crossing()
            if kind == "sleep":
                yield simulator.sleep(op[1])
            elif kind == "yield":
                yield None
            elif kind == "put":
                queues[op[1] % len(queues)].put((pid, step))
            elif kind == "get":
                try:
                    item = yield queues[op[1] % len(queues)].get(timeout=op[2])
                    log.append(("got", pid, step, item, simulator.now))
                except SimTimeout as exc:
                    log.append(("timeout", pid, step, str(exc), simulator.now))
            elif kind == "spawn":
                if budget[0] > 0:
                    budget[0] -= 1
                    launch(op[1] % len(program))
            elif kind == "join":
                if not spawned:
                    continue
                target = spawned[op[1] % len(spawned)]
                try:
                    result = yield target
                    log.append(("joined", pid, step, result, simulator.now))
                except Exception as exc:  # noqa: BLE001 - logged verbatim
                    log.append(
                        ("join-raised", pid, step, type(exc).__name__, str(exc))
                    )
            elif kind == "return":
                return op[1]
            elif kind == "raise":
                raise ValueError(f"boom-{pid}-{step}")

    for spec_idx in range(len(program)):
        launch(spec_idx)

    exc_obs = None
    returned = None
    try:
        returned = simulator.run(until=until, max_events=max_events)
    except Exception as exc:  # noqa: BLE001 - normalized below
        if "exceeded" in str(exc):
            # The kernels word their exhaustion reports differently (the
            # fast one names the oldest runnable process); conformance
            # only requires that both give up after the same event.
            exc_obs = ("exhausted",)
        else:
            cause = exc.__cause__
            exc_obs = (
                type(exc).__name__,
                str(exc),
                type(cause).__name__ if cause is not None else None,
                str(cause) if cause is not None else None,
            )
    return {
        "log": log,
        "returned": returned,
        "now": simulator.now,
        "exc": exc_obs,
        "queue_depths": [len(q) for q in queues],
        "alive": [p.alive for p in spawned],
        "results": [(p.result, type(p.error).__name__ if p.error else None)
                    for p in spawned],
        "counters": {
            domain: counter.as_dict()
            for domain, counter in accountant.domains().items()
        },
    }


def assert_conformant(program, until=None, max_events=10_000_000):
    fast = run_program(sim, program, until=until, max_events=max_events)
    reference = run_program(
        sim_reference, program, until=until, max_events=max_events
    )
    try:
        assert fast == reference
    except AssertionError:
        FAILURE_DIR.mkdir(exist_ok=True)
        name = f"program-{abs(hash(repr(program))) % 10**10}.py"
        (FAILURE_DIR / name).write_text(
            "# Falsified scheduler-conformance program; replay with\n"
            "#   tests/core/test_sim_conformance.py::run_program\n"
            f"program = {program!r}\n"
            f"until = {until!r}\n"
            f"max_events = {max_events!r}\n"
        )
        raise


# -- generated programs -----------------------------------------------------

# Heavy repetition in the pools forces same-timestamp collisions, and
# 1e-18 exercises the float-underflow path (now + dt == now for now
# large enough), which the fast kernel must route to its now-lane.
_dt = st.sampled_from([0.0, 0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 3.0, 1e-18])
_timeout = st.sampled_from([None, None, 0.0, 0.25, 0.5, 1.0])
_queue_idx = st.integers(min_value=0, max_value=1)

_op = st.one_of(
    st.tuples(st.just("sleep"), _dt),
    st.tuples(st.just("yield")),
    st.tuples(st.just("put"), _queue_idx),
    st.tuples(st.just("get"), _queue_idx, _timeout),
    st.tuples(st.just("spawn"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("join"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("return"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("raise")),
)
_program = st.lists(
    st.lists(_op, max_size=8), min_size=1, max_size=4
)


@settings(max_examples=EXAMPLES, deadline=None)
@given(program=_program)
def test_property_generated_programs_conform(program):
    assert_conformant(program)


@settings(max_examples=EXAMPLES, deadline=None)
@given(
    program=_program,
    until=st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
)
def test_property_bounded_runs_conform(program, until):
    assert_conformant(program, until=until)


@settings(max_examples=EXAMPLES, deadline=None)
@given(
    program=_program,
    max_events=st.sampled_from([1, 5, 12, 40]),
)
def test_property_exhaustion_conforms(program, max_events):
    assert_conformant(program, max_events=max_events)


@pytest.mark.slow
@settings(max_examples=EXAMPLES * 8, deadline=None)
@given(
    program=st.lists(st.lists(_op, max_size=12), min_size=1, max_size=6),
    until=st.one_of(st.none(), st.sampled_from([0.5, 1.0, 4.0])),
)
def test_property_deep_programs_conform(program, until):
    assert_conformant(program, until=until)


# -- deterministic conformance pins ----------------------------------------
#
# Named scenarios the rewrite is most likely to get subtly wrong; each
# runs through the same differential harness so both kernels are pinned.


def test_same_timestamp_fifo_order():
    """Zero-delay wakeups interleaved with equal-time sleeps execute in
    scheduling order, never sorted or batched out of order."""
    assert_conformant(
        [
            [("yield",), ("sleep", 1.0), ("put", 0)],
            [("sleep", 1.0), ("yield",), ("put", 0)],
            [("sleep", 1.0), ("sleep", 0.0), ("get", 0, None), ("get", 0, None)],
        ]
    )


def test_timeout_vs_delivery_tie():
    """A put and a get-timeout on the same timestamp (the PR 2 fix)."""
    assert_conformant(
        [
            [("sleep", 1.0), ("put", 0)],
            [("get", 0, 1.0)],
        ]
    )


def test_join_result_and_exception():
    assert_conformant(
        [
            [("spawn", 1), ("spawn", 2), ("join", 1), ("join", 2)],
            [("sleep", 0.5), ("return", 3)],
            [("sleep", 0.25), ("raise",)],
        ]
    )


def test_orphan_failure_aborts_identically():
    assert_conformant([[("sleep", 0.5)], [("sleep", 0.25), ("raise",)]])


def test_until_time_creep_from_stale_timeout():
    """A satisfied get leaves its (stale) timeout scheduled; both
    kernels let it creep the clock forward rather than cancelling."""
    assert_conformant(
        [
            [("get", 0, 5.0)],
            [("sleep", 1.0), ("put", 0)],
        ]
    )
    # And the creep interacts with until the same way on both sides.
    assert_conformant(
        [
            [("get", 0, 5.0)],
            [("sleep", 1.0), ("put", 0)],
        ],
        until=3.0,
    )


def test_exhaustion_conformance_and_typed_error():
    program = [[("yield",)] * 6 for _ in range(3)]
    assert_conformant(program, max_events=7)

    # The fast kernel's exhaustion error is the typed SimError.
    simulator = sim.Simulator()

    def spinner():
        while True:
            yield None

    simulator.spawn(spinner(), "spinner")
    with pytest.raises(sim.SimError, match="exceeded 7 events"):
        simulator.run(max_events=7)


def test_interrupt_conforms():
    def scenario(sim_mod):
        simulator = sim_mod.Simulator()
        log = []

        def sleeper():
            try:
                yield simulator.sleep(10.0)
                log.append("woke")
            except Exception as exc:  # noqa: BLE001
                log.append((type(exc).__name__, str(exc)))

        def killer(victim):
            yield simulator.sleep(1.0)
            victim.interrupt("stopped by host")

        victim = simulator.spawn(sleeper(), "victim")
        watcher = simulator.spawn(killer(victim), "killer")
        end = simulator.run()
        return log, end, victim.alive, watcher.alive

    assert scenario(sim) == scenario(sim_reference)
    log, end, victim_alive, _ = scenario(sim)
    assert log == [("NetworkError", "stopped by host")]
    # The stale 10s sleep entry still creeps the clock (reference
    # semantics: nothing is ever cancelled).
    assert end == 10.0
    assert not victim_alive
