"""Property suite for the calendar-queue/heap hybrid.

The model is the dumbest correct priority queue there is: a list of
``(time, seq, value)`` triples popped by ``min`` over ``(time, seq)``.
Hypothesis drives arbitrary interleavings of schedule / cancel / pop
against :class:`repro.net.calqueue.CalendarQueue` and the model must
never disagree — in particular on FIFO order within a shared
timestamp, which is the invariant the fast simulator kernel's
correctness rests on (see DESIGN.md).

The deterministic tests at the bottom pin the raw kernel path
(``push`` / ``min_time`` / ``pop_bucket`` / ``advance_onto``) and the
same-timestamp timeout-vs-delivery tie-break in
:class:`~repro.net.sim.MessageQueue` that PR 2 fixed, on both kernels.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import sim, sim_reference
from repro.net.calqueue import CalendarQueue
from repro.errors import SimTimeout

# A tiny timestamp pool forces heavy same-timestamp collisions; the
# integers avoid float-comparison noise in the model.
_times = st.sampled_from([0.0, 0.25, 0.25, 0.5, 1.0, 1.0, 2.0, 7.5])

# One program = a sequence of operations:
#   ("schedule", time)  — insert the next value at ``time``
#   ("cancel", k)       — cancel the k-th handle issued so far (mod len)
#   ("pop",)            — pop the earliest live entry
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _times),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("pop")),
    ),
    max_size=120,
)


class _ModelQueue:
    """Sorted-list reference: pop-min over (time, insertion seq)."""

    def __init__(self):
        self.entries = []  # live (time, seq, value)
        self.seq = 0

    def schedule(self, time, value):
        key = (time, self.seq, value)
        self.seq += 1
        self.entries.append(key)
        return key

    def cancel(self, key):
        if key in self.entries:
            self.entries.remove(key)
            return True
        return False

    def pop(self):
        best = min(self.entries)  # (time, seq) lexicographic
        self.entries.remove(best)
        return best[0], best[2]

    def __len__(self):
        return len(self.entries)


@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_property_matches_sorted_list_model(ops):
    real = CalendarQueue()
    model = _ModelQueue()
    handles = []  # (real handle, model key), including consumed ones
    counter = 0
    for op in ops:
        if op[0] == "schedule":
            value = counter
            counter += 1
            handles.append(
                (real.schedule(op[1], value), model.schedule(op[1], value))
            )
        elif op[0] == "cancel":
            if not handles:
                continue
            handle, key = handles[op[1] % len(handles)]
            # Cancelling an already-popped or already-cancelled handle
            # must be a refused no-op in both.
            assert real.cancel(handle) == model.cancel(key)
        else:
            if len(model):
                assert real.pop() == model.pop()
            else:
                with pytest.raises(IndexError):
                    real.pop()
        assert len(real) == len(model)
        assert bool(real) == bool(model)
    # Drain: the survivors must come out in exact model order.
    while len(model):
        assert real.pop() == model.pop()
    with pytest.raises(IndexError):
        real.pop()


@settings(max_examples=100, deadline=None)
@given(times=st.lists(_times, max_size=60))
def test_property_raw_path_drains_in_time_then_fifo_order(times):
    """push/pop_bucket (no cancellation) yields (time, seq) order."""
    q = CalendarQueue()
    for i, t in enumerate(times):
        q.push(t, (t, i))
    expected = sorted(((t, i) for i, t in enumerate(times)))
    drained = []
    while q:
        assert q.min_time() == (expected[len(drained)][0] if expected else None)
        _, bucket = q.pop_bucket()
        drained.extend(bucket if type(bucket) is list else [bucket])
    assert drained == expected
    assert q.min_time() is None


def test_same_timestamp_fifo_tie_break():
    """Entries sharing a timestamp pop in insertion order, even when
    interleaved with cancellations and other timestamps."""
    q = CalendarQueue()
    first = q.schedule(1.0, "first")
    q.schedule(0.5, "early")
    second = q.schedule(1.0, "second")
    q.schedule(1.0, "third")
    q.cancel(second)
    assert [q.pop() for _ in range(3)] == [
        (0.5, "early"),
        (1.0, "first"),
        (1.0, "third"),
    ]


def test_advance_onto_splices_whole_bucket():
    q = CalendarQueue()
    q.push(2.0, ("b", 0))
    q.push(1.0, ("a", 0))
    q.push(2.0, ("b", 1))
    fifo = deque()
    assert q.advance_onto(fifo) == 1.0
    assert list(fifo) == [("a", 0)]
    fifo.clear()
    assert q.advance_onto(fifo) == 2.0
    assert list(fifo) == [("b", 0), ("b", 1)]
    assert not q
    with pytest.raises(IndexError):
        q.advance_onto(fifo)


# -- the PR 2 MessageQueue same-timestamp regression, on both kernels ------


def _timeout_vs_delivery_tie(sim_module):
    """A put and a get-timeout landing on the same timestamp: the
    earlier-scheduled event wins, and a losing delivery re-buffers its
    item instead of dropping it or waking a stale wait."""
    sim_obj = sim_module.Simulator()
    queue = sim_obj.queue("tie")
    outcomes = []

    def producer():
        yield sim_obj.sleep(1.0)
        queue.put("payload")

    def consumer():
        try:
            item = yield queue.get(timeout=1.0)
            outcomes.append(("got", item))
        except SimTimeout:
            outcomes.append(("timeout",))

    # Producer first: its put at t=1.0 is scheduled *before* the
    # consumer's timeout at t=1.0, so the delivery enqueues a wake —
    # but the timeout still fires first at that timestamp (it entered
    # the t=1.0 bucket before the put-wake entered the now-lane), the
    # wake goes stale, and the item must be re-buffered.
    sim_obj.spawn(producer(), "producer")
    sim_obj.spawn(consumer(), "consumer")
    sim_obj.run()
    return outcomes, len(queue), sim_obj.now


def test_message_queue_timeout_vs_delivery_tie_fast_kernel():
    assert _timeout_vs_delivery_tie(sim) == ([("timeout",)], 1, 1.0)


def test_message_queue_timeout_vs_delivery_tie_reference_kernel():
    assert _timeout_vs_delivery_tie(sim_reference) == ([("timeout",)], 1, 1.0)
