"""BENCH_perf schema, validator and formatter (repro.perfbench).

The heavy cold/warm sweep lives in ``benchmarks/perf.py`` and the
``python -m repro bench`` CLI; this suite keeps tier-1 fast by running
one cheap scenario end-to-end and validating documents by hand.
"""

import json

import pytest

from repro import perfbench
from repro.crypto import cache


@pytest.fixture(scope="module")
def smoke_doc():
    return perfbench.run_perf(smoke=True, repeats=1, scenarios=["record_channel"])


class TestRunPerf:
    def test_smoke_doc_validates(self, smoke_doc):
        assert perfbench.validate_perf(smoke_doc) == []

    def test_doc_shape(self, smoke_doc):
        assert smoke_doc["schema"] == perfbench.SCHEMA
        assert smoke_doc["smoke"] is True
        entry = smoke_doc["scenarios"]["record_channel"]
        assert len(entry["cold_seconds"]) == 1
        assert entry["cold_median_s"] > 0
        assert entry["warm_median_s"] > 0
        assert entry["speedup"] > 0

    def test_env_fingerprint(self, smoke_doc):
        env = smoke_doc["env"]
        assert env["cpu_count"] >= 1
        assert isinstance(env["fast_aes_kernel"], bool)
        assert env["python"]

    def test_caches_left_enabled(self, smoke_doc):
        # run_perf toggles the caches internally; the ambient state
        # must survive untouched.
        assert cache.enabled()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            perfbench.run_perf(smoke=True, repeats=1, scenarios=["bogus"])

    def test_json_round_trips(self, smoke_doc):
        text = perfbench.perf_json(smoke_doc)
        assert text.endswith("\n")
        assert json.loads(text) == smoke_doc

    def test_format_mentions_every_scenario(self, smoke_doc):
        table = perfbench.format_perf(smoke_doc)
        assert "record_channel" in table
        assert "speedup" in table


class TestValidatePerf:
    def test_catches_wrong_schema(self, smoke_doc):
        doc = dict(smoke_doc, schema="bogus/9")
        assert any("schema" in p for p in perfbench.validate_perf(doc))

    def test_catches_missing_env_field(self, smoke_doc):
        doc = dict(smoke_doc, env={"python": "3"})
        problems = perfbench.validate_perf(doc)
        assert any("cpu_count" in p for p in problems)

    def test_catches_missing_scenarios(self, smoke_doc):
        doc = dict(smoke_doc)
        del doc["scenarios"]
        assert any("scenarios" in p for p in perfbench.validate_perf(doc))

    def test_catches_nonpositive_median(self, smoke_doc):
        entry = dict(smoke_doc["scenarios"]["record_channel"], warm_median_s=0)
        doc = dict(smoke_doc, scenarios={"record_channel": entry})
        assert any("not positive" in p for p in perfbench.validate_perf(doc))

    def test_validates_ablation_cells(self):
        doc = {
            "schema": perfbench.SCHEMA,
            "env": {
                "python": "3",
                "platform": "x",
                "cpu_count": 1,
                "fast_aes_kernel": False,
            },
            "cells": [{"caches": True, "workers": 1, "seconds": 0.5}],
        }
        assert perfbench.validate_perf(doc) == []
        doc["cells"] = [{"caches": True}]
        problems = perfbench.validate_perf(doc)
        assert any("workers" in p for p in problems)
        assert any("seconds" in p for p in problems)


class TestKernelBench:
    @pytest.fixture(scope="class")
    def kernel_section(self):
        return perfbench.run_kernel_bench(smoke=True, repeats=1)

    def test_covers_all_kernel_scenarios(self, kernel_section):
        assert sorted(kernel_section) == [
            "kernel_events",
            "kernel_queues",
            "kernel_timers",
        ]

    def test_entry_shape(self, kernel_section):
        for entry in kernel_section.values():
            assert entry["n_events"] > 0
            assert entry["fast_median_s"] > 0
            assert entry["reference_median_s"] > 0
            assert entry["fast_events_per_s"] > 0
            assert entry["speedup"] > 0
            assert len(entry["fast_seconds"]) == len(entry["reference_seconds"])

    def test_validate_catches_missing_kernel_section(self):
        doc = perfbench.run_perf(smoke=True, repeats=1, scenarios=["record_channel"])
        del doc["kernel"]
        assert any("kernel" in p for p in perfbench.validate_perf(doc))

    def test_format_prints_kernel_table(self):
        doc = perfbench.run_perf(smoke=True, repeats=1, scenarios=["record_channel"])
        text = perfbench.format_perf(doc)
        for name in ("kernel_events", "kernel_timers", "kernel_queues"):
            assert name in text


class TestRingsSection:
    @pytest.fixture(scope="class")
    def rings_section(self):
        return perfbench.run_rings_section(smoke=True)

    def test_grid_shape(self, rings_section):
        assert rings_section["ablation"] == "A14"
        assert rings_section["n_records"] > 0
        modes = {cell["mode"] for cell in rings_section["grid"]}
        assert modes == {"ecall", "switchless", "rings"}
        depths = [
            cell["depth"]
            for cell in rings_section["grid"]
            if cell["mode"] == "rings"
        ]
        assert depths == list(rings_section["depths"])
        for cell in rings_section["grid"]:
            assert cell["crossings"] >= 0
            assert cell["cycles"] > 0

    def test_deep_rings_halve_crossings_twice(self, rings_section):
        # The acceptance bar: >= 2x crossings/record reduction at
        # depth >= 4 relative to the one-crossing-per-record baseline.
        deep = [
            cell
            for cell in rings_section["grid"]
            if cell["mode"] == "rings" and cell["depth"] >= 4
        ]
        assert deep
        assert all(cell["crossing_reduction"] >= 2 for cell in deep)

    def test_switchless_reduction_is_json_safe(self, rings_section):
        # Zero-crossing cells report None, never Infinity (which would
        # poison the committed BENCH_perf.json).
        for cell in rings_section["grid"]:
            if cell["crossings"] == 0:
                assert cell["crossing_reduction"] is None
        json.dumps(rings_section, allow_nan=False)

    def test_validate_catches_missing_rings_section(self, smoke_doc):
        doc = dict(smoke_doc)
        del doc["rings"]
        assert any("rings" in p for p in perfbench.validate_perf(doc))

    def test_validate_catches_weak_reduction(self, smoke_doc):
        rings = json.loads(json.dumps(smoke_doc["rings"]))
        for cell in rings["grid"]:
            if cell["mode"] == "rings" and cell["depth"] >= 4:
                cell["crossing_reduction"] = 1.5
        doc = dict(smoke_doc, rings=rings)
        problems = perfbench.validate_perf(doc)
        assert any("reduction" in p for p in problems)

    def test_format_prints_rings_table(self, smoke_doc):
        text = perfbench.format_perf(smoke_doc)
        assert "A14" in text
        assert "rings" in text


class TestDpiSection:
    @pytest.fixture(scope="class")
    def dpi_section(self):
        return perfbench.run_dpi_section(smoke=True, repeats=1)

    def test_section_shape(self, dpi_section):
        assert dpi_section["ablation"] == "A17"
        params = dpi_section["params"]
        assert params["rules"] > 0
        assert params["states"] > params["rules"]
        assert dpi_section["compiled_median_s"] > 0
        assert dpi_section["reference_median_s"] > 0
        assert dpi_section["compiled_mb_per_s"] > 0
        assert dpi_section["speedup"] > 0
        assert len(dpi_section["compiled_seconds"]) == len(
            dpi_section["reference_seconds"]
        )

    def test_compiled_engine_is_faster(self, dpi_section):
        # The tentpole claim.  Smoke corpora are small, so the CI gate
        # in validate_perf only demands >= 1.0x; the full-depth run
        # committed in BENCH_perf.json shows ~3x.
        assert dpi_section["speedup"] >= 1.0

    def test_validate_catches_missing_dpi_section(self, smoke_doc):
        doc = dict(smoke_doc)
        del doc["dpi"]
        assert any("dpi" in p for p in perfbench.validate_perf(doc))

    def test_validate_catches_regressed_speedup(self, smoke_doc):
        dpi = dict(smoke_doc["dpi"], speedup=0.8)
        doc = dict(smoke_doc, dpi=dpi)
        problems = perfbench.validate_perf(doc)
        assert any("dpi speedup" in p for p in problems)

    def test_format_prints_dpi_table(self, smoke_doc):
        text = perfbench.format_perf(smoke_doc)
        assert "A17" in text
        assert "DPI bulk scan" in text

    def test_regress_tracker_picks_up_the_speedup(self, smoke_doc):
        from repro.obs import regress

        entry = regress.entry_from_perf(smoke_doc)
        assert entry["metrics"]["dpi:bulk_scan:speedup"] == (
            smoke_doc["dpi"]["speedup"]
        )
        assert regress._direction("dpi:bulk_scan:speedup") == "higher"


class TestKernelAblation:
    def test_a13_grid_shape_and_validation(self):
        doc = perfbench.run_kernel_ablation(smoke=True)
        assert perfbench.validate_perf(doc) == []
        assert doc["ablation"] == "A13"
        grid = {(c["kernel"], c["burst_charging"]) for c in doc["cells"]}
        assert grid == {
            ("reference", False),
            ("reference", True),
            ("fast", False),
            ("fast", True),
        }
        assert all(c["seconds"] > 0 for c in doc["cells"])
        text = perfbench.format_perf(doc)
        assert "reference" in text and "fast" in text

    def test_a13_restores_burst_and_kernel_state(self):
        from repro.cost import accountant as accountant_mod
        from repro.net.sim import current_kernel

        prior = accountant_mod.burst_enabled()
        perfbench.run_kernel_ablation(smoke=True)
        assert accountant_mod.burst_enabled() == prior
        assert current_kernel() == "fast"
