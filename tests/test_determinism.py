"""Whole-experiment determinism: identical seeds, identical worlds."""

from repro.cost import Counter
from repro.routing.deployment import run_native_routing, run_sgx_routing
from repro.tor.deployment import TorDeployment, TorDeploymentConfig
from repro.middlebox.scenarios import MiddleboxScenario


class TestDeterminism:
    def test_sgx_routing_replays_bit_identically(self):
        a = run_sgx_routing(n_ases=5, seed=b"det-routing")
        b = run_sgx_routing(n_ases=5, seed=b"det-routing")
        assert a.routes == b.routes
        assert a.controller_steady == b.controller_steady
        assert a.as_steady == b.as_steady
        assert a.attestations == b.attestations
        assert a.sim_time == b.sim_time

    def test_different_seed_different_topology(self):
        a = run_native_routing(n_ases=8, seed=b"det-a")
        b = run_native_routing(n_ases=8, seed=b"det-b")
        assert a.topology.rel != b.topology.rel

    def test_tor_deployment_replays(self):
        config = TorDeploymentConfig(
            phase=2, n_relays=4, n_exits=2, malicious={"or1": "tamper"},
            seed=b"det-tor",
        )
        a = TorDeployment(config)
        b = TorDeployment(config)
        assert a.rejected_registrations == b.rejected_registrations
        assert a.registration_attestations == b.registration_attestations
        result_a = a.run_client_request()
        result_b = b.run_client_request()
        assert result_a == result_b

    def test_middlebox_scenario_replays(self):
        payloads = [b"one SECRET", b"two"]
        a = MiddleboxScenario(n_middleboxes=1, rules=[("r", b"SECRET", "alert")]).run(payloads)
        b = MiddleboxScenario(n_middleboxes=1, rules=[("r", b"SECRET", "alert")]).run(payloads)
        assert a.replies == b.replies
        assert a.stats == b.stats
        assert a.attestations == b.attestations
