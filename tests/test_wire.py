"""Wire format: roundtrips, bounds, and hostile-input fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.wire import Reader, Writer


class TestRoundtrips:
    def test_fixed_width_integers(self):
        data = Writer().u8(7).u16(300).u32(70000).u64(1 << 40).getvalue()
        reader = Reader(data)
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.u64() == 1 << 40
        reader.expect_end()

    def test_varbytes_and_raw(self):
        data = Writer().varbytes(b"hello").raw(b"fixed").getvalue()
        reader = Reader(data)
        assert reader.varbytes() == b"hello"
        assert reader.raw(5) == b"fixed"

    def test_string_unicode(self):
        data = Writer().string("héllo wörld ✓").getvalue()
        assert Reader(data).string() == "héllo wörld ✓"

    def test_varint_widths(self):
        for value in (0, 1, 255, 256, 1 << 64, 1 << 1024):
            data = Writer().varint(value).getvalue()
            assert Reader(data).varint() == value

    def test_strings_list(self):
        items = ["a", "", "long " * 50]
        data = Writer().strings(items).getvalue()
        assert Reader(data).strings() == items

    def test_remaining_tracks_cursor(self):
        reader = Reader(b"\x00" * 10)
        assert reader.remaining == 10
        reader.raw(4)
        assert reader.remaining == 6


class TestBounds:
    def test_u8_range(self):
        with pytest.raises(ProtocolError):
            Writer().u8(256)
        with pytest.raises(ProtocolError):
            Writer().u8(-1)

    def test_u16_u32_u64_ranges(self):
        with pytest.raises(ProtocolError):
            Writer().u16(1 << 16)
        with pytest.raises(ProtocolError):
            Writer().u32(1 << 32)
        with pytest.raises(ProtocolError):
            Writer().u64(1 << 64)

    def test_negative_varint(self):
        with pytest.raises(ProtocolError):
            Writer().varint(-1)

    def test_truncated_reads_raise(self):
        reader = Reader(b"\x01")
        with pytest.raises(ProtocolError, match="truncated"):
            reader.u32()

    def test_varbytes_length_cap(self):
        data = Writer().u32(1 << 20).getvalue() + b"x"
        with pytest.raises(ProtocolError):
            Reader(data).varbytes(max_len=1024)

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00\x01")
        reader.u8()
        with pytest.raises(ProtocolError, match="trailing"):
            reader.expect_end()


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(
        st.one_of(
            st.tuples(st.just("u8"), st.integers(0, 255)),
            st.tuples(st.just("u32"), st.integers(0, (1 << 32) - 1)),
            st.tuples(st.just("varbytes"), st.binary(max_size=100)),
            st.tuples(st.just("string"), st.text(max_size=40)),
            st.tuples(st.just("varint"), st.integers(min_value=0, max_value=1 << 200)),
        ),
        max_size=12,
    )
)
def test_property_mixed_roundtrip(items):
    writer = Writer()
    for kind, value in items:
        getattr(writer, kind)(value)
    reader = Reader(writer.getvalue())
    for kind, value in items:
        assert getattr(reader, kind)() == value
    reader.expect_end()


@settings(max_examples=60, deadline=None)
@given(garbage=st.binary(max_size=60))
def test_property_decoders_never_crash_uncontrolled(garbage):
    """Hostile bytes either decode or raise a repro error — never an
    uncontrolled exception like IndexError."""
    from repro.errors import ReproError
    from repro.sgx.quoting import Quote
    from repro.routing.policy import LocalPolicy
    from repro.tor.directory import RouterDescriptor

    for decoder in (Quote.decode, LocalPolicy.decode, RouterDescriptor.decode):
        try:
            decoder(garbage)
        except ReproError:
            pass
        except (ValueError, KeyError, UnicodeDecodeError):
            # Wrapped stdlib validation is acceptable (enum/codec).
            pass
