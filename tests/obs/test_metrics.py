"""Unit tests for the deterministic metrics registry (DESIGN.md §10):
instruments, the simulated-time sampler, exact reconciliation against
accountants, hot-path no-ops, and the OpenMetrics time-series export."""

import pytest

from repro import obs
from repro.cost import DEFAULT_MODEL, CostAccountant
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    MetricsReconcileError,
    MetricsRegistry,
    metric_count,
    metric_gauge,
    metric_observe,
    openmetrics_timeseries,
    reconcile_metrics,
)


def _metered_recording():
    """One accountant exercising every reconciled Counter field."""
    registry = MetricsRegistry(interval=1000)
    tracer = obs.Tracer(metrics=registry)
    with obs.tracing(tracer):
        acct = CostAccountant(name="host")
        with acct.attribute("enclave:e"):
            acct.charge_sgx(3)
            acct.charge_normal(500)
            acct.charge_crossing(2)
            acct.charge_switchless(4)
            acct.charge_allocation(5)
            acct.charge_fault(1)
        acct.charge_normal(7)
    return registry, tracer, acct


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.total("hits") == 5

    def test_label_order_is_canonicalized(self):
        reg = MetricsRegistry()
        reg.inc("hits", 1, b="2", a="1")
        reg.inc("hits", 1, a="1", b="2")
        assert reg.counters == {("hits", (("a", "1"), ("b", "2"))): 2}

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3.0)
        reg.set_gauge("depth", 1.0)
        assert reg.gauges[("depth", ())] == 1.0

    def test_histogram_buckets_are_powers_of_four(self):
        assert HISTOGRAM_BUCKETS[0] == 1
        assert all(b == 4 ** k for k, b in enumerate(HISTOGRAM_BUCKETS))

    def test_histogram_observe_and_quantile(self):
        reg = MetricsRegistry()
        for v in (1, 2, 5, 100):
            reg.observe("lat", v)
        hist = reg.histogram_total("lat")
        assert hist.count == 4
        assert hist.total == 108.0
        # 1 falls on the first bound; 2 in (1,4]; 5 in (4,16]; 100 in
        # (64,256].  p50 over 4 obs = 2nd value's upper bound.
        assert hist.quantile(0.5) == 4.0
        assert hist.quantile(0.99) == 256.0

    def test_empty_histogram_quantile_is_zero(self):
        assert MetricsRegistry().histogram_total("lat").quantile(0.99) == 0.0

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            MetricsRegistry(interval=0)


class TestSampler:
    def test_no_sample_before_first_boundary(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("x")
        reg.on_clock(999.0)
        assert reg.samples == []

    def test_sample_at_boundary_snapshots_cumulative_state(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("x", 2)
        reg.on_clock(1000.0)
        assert len(reg.samples) == 1
        sample = reg.samples[0]
        assert sample.boundary == 1
        assert sample.at_cycles == 1000.0
        assert sample.counters == {("x", ()): 2}

    def test_multi_boundary_jump_takes_one_sample(self):
        # One big charge crossing boundaries 1..5 records a single
        # sample at the last crossed boundary — the series is flat in
        # between because the clock advances atomically per charge.
        reg = MetricsRegistry(interval=1000)
        reg.inc("x")
        reg.on_clock(5200.0)
        assert [s.boundary for s in reg.samples] == [5]
        assert reg.samples[0].at_cycles == 5000.0
        reg.on_clock(5900.0)
        assert len(reg.samples) == 1  # next boundary is 6000

    def test_snapshots_are_isolated_copies(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("x")
        reg.observe("h", 3)
        reg.on_clock(1000.0)
        reg.inc("x", 10)
        reg.observe("h", 7)
        assert reg.samples[0].counters == {("x", ()): 1}
        assert reg.samples[0].histograms[("h", ())][1] == 1

    def test_finalize_stamps_and_is_idempotent(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("x")
        reg.on_clock(123.0)
        final = reg.finalize()
        assert final.boundary == -1
        assert final.at_cycles == 123.0
        assert reg.finalize() is final
        assert len(reg.samples) == 1

    def test_series_points_aggregate_families_and_end_live(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("x", 1, shard="0")
        reg.on_clock(1000.0)
        reg.inc("x", 2, shard="1")
        reg.on_clock(1500.0)
        assert reg.series_points("x") == [(1000.0, 1.0), (1500.0, 3.0)]
        reg.finalize()
        assert reg.series_points("x")[-1] == (1500.0, 3.0)


class TestTracerIntegration:
    def test_charges_mirror_into_labeled_counters(self):
        registry, tracer, acct = _metered_recording()
        labels = (("domain", "enclave:e"), ("source", "host"))
        assert registry.counters[("sgx_instructions", labels)] == 3
        assert registry.counters[("normal_instructions", labels)] == 500
        assert registry.counters[("event:crossing", labels)] == 2
        assert registry.counters[("event:switchless_hit", labels)] == 4
        assert registry.counters[("allocations", labels)] == 5
        assert registry.counters[("faults_injected", labels)] == 1
        untrusted = (("domain", "untrusted"), ("source", "host"))
        assert registry.counters[("normal_instructions", untrusted)] == 7

    def test_sample_clock_tracks_cost_model_cycles(self):
        registry, tracer, _ = _metered_recording()
        assert registry.clock_cycles == DEFAULT_MODEL.cycles(3, 507)

    def test_tracer_without_metrics_still_works(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            acct.charge_fault()
        assert tracer.metrics is None
        obs.reconcile(tracer)


class TestHotPathHelpers:
    def test_noop_without_active_tracer(self):
        metric_count("orphan")
        metric_gauge("orphan", 1.0)
        metric_observe("orphan", 1.0)

    def test_noop_with_tracer_but_no_registry(self):
        with obs.tracing(obs.Tracer()):
            metric_count("orphan")
            metric_gauge("orphan", 1.0)
            metric_observe("orphan", 1.0)

    def test_recorded_on_active_registry(self):
        reg = MetricsRegistry()
        with obs.tracing(obs.Tracer(metrics=reg)):
            metric_count("hits", 2)
            metric_gauge("depth", 4.0)
            metric_observe("lat", 17.0)
        assert reg.total("hits") == 2
        assert reg.gauges[("depth", ())] == 4.0
        assert reg.histogram_total("lat").count == 1


class TestReconcileMetrics:
    def test_exact_recording_reconciles(self):
        registry, tracer, _ = _metered_recording()
        reconcile_metrics(registry, tracer)

    def test_tracer_level_reconcile_covers_metrics(self):
        registry, tracer, _ = _metered_recording()
        obs.reconcile(tracer)

    def test_counter_tamper_detected(self):
        registry, tracer, acct = _metered_recording()
        acct.counter("enclave:e").allocations += 1
        with pytest.raises(MetricsReconcileError, match="allocations"):
            reconcile_metrics(registry, tracer)

    def test_post_finalize_drift_detected(self):
        registry, tracer, _ = _metered_recording()
        registry.finalize()
        registry.inc("hits")  # counters move after the final snapshot
        with pytest.raises(MetricsReconcileError, match="final sample"):
            reconcile_metrics(registry, tracer)

    def test_reset_source_skipped(self):
        reg = MetricsRegistry()
        tracer = obs.Tracer(metrics=reg)
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            acct.reset()
            acct.charge_normal(3)
        # Counters no longer cover the series history; the metrics
        # reconcile must skip the source like the tracer-level one does.
        reconcile_metrics(reg, tracer)

    def test_disabled_ghost_accountant_skipped(self):
        registry, tracer, _ = _metered_recording()
        with obs.tracing(tracer):
            ghost = CostAccountant(name="ghost")
        ghost.enabled = False
        ghost.counter("untrusted").normal_instructions = 999
        assert ghost in tracer.accountants
        reconcile_metrics(registry, tracer)


class TestOpenMetricsTimeseries:
    def test_ends_with_eof(self):
        registry, _, _ = _metered_recording()
        text = openmetrics_timeseries(registry)
        assert text.endswith("# EOF\n")

    def test_byte_identical_across_same_seed_runs(self):
        a = openmetrics_timeseries(_metered_recording()[0])
        b = openmetrics_timeseries(_metered_recording()[0])
        assert a == b

    def test_counter_series_with_timestamps(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("hits", 2, source="s")
        reg.on_clock(1000.0)
        reg.inc("hits", 3, source="s")
        reg.on_clock(2000.0)
        text = openmetrics_timeseries(reg)
        assert "# TYPE repro_hits counter" in text
        assert 'repro_hits_total{source="s"} 2 0.000001\n' in text
        assert 'repro_hits_total{source="s"} 5 0.000002\n' in text

    def test_unchanged_points_deduplicated(self):
        reg = MetricsRegistry(interval=1000)
        reg.inc("hits")
        for t in range(1, 6):
            reg.on_clock(t * 1000.0)
        text = openmetrics_timeseries(reg)
        # Five flat samples collapse to the first point plus the
        # finalize() point (always kept so series end on the run clock).
        assert text.count("repro_hits_total") == 2

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry(interval=1000)
        reg.observe("lat", 1)
        reg.observe("lat", 100)
        reg.on_clock(1000.0)
        text = openmetrics_timeseries(reg)
        assert 'repro_lat_bucket{le="1"} 1 0.000001' in text
        assert 'repro_lat_bucket{le="256"} 2 0.000001' in text
        assert 'repro_lat_bucket{le="+Inf"} 2 0.000001' in text
        assert "repro_lat_count 2 0.000001" in text
        assert "repro_lat_sum 101 0.000001" in text

    def test_gauge_has_no_total_suffix(self):
        reg = MetricsRegistry(interval=1000)
        reg.set_gauge("depth", 4.0)
        reg.on_clock(1000.0)
        text = openmetrics_timeseries(reg)
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 4 0.000001" in text
        assert "repro_depth_total" not in text


class TestEpcReconciliation:
    """epc_* metric families must mirror the live page caches exactly."""

    def _paging_workload(self):
        from repro.cost import context as cost_context
        from repro.sgx.epc import EnclavePageCache, PageType

        registry = MetricsRegistry(interval=1000)
        tracer = obs.Tracer(metrics=registry)
        with obs.tracing(tracer):
            acct = CostAccountant(name="host")
            with cost_context.use_accountant(acct, DEFAULT_MODEL):
                epc = EnclavePageCache(b"k" * 16, frames=3, allow_paging=True)
                pages = [
                    epc.allocate(1, PageType.REG) for _ in range(5)
                ]  # 2 allocation-time evictions
                for page in pages:
                    epc.read(1, page.index)  # reload the evicted tail
                epc.pressure_evict(2)  # the paging_storm hook
        return registry, tracer, epc

    def test_paging_workload_reconciles_exactly(self):
        registry, tracer, epc = self._paging_workload()
        reconcile_metrics(registry, tracer)
        assert epc.evictions > 0 and epc.reloads > 0
        assert registry.total("epc_ewb") == epc.evictions
        assert registry.total("epc_eldu") == epc.reloads
        assert int(registry.gauges[("epc_resident_pages", ())]) == (
            epc.resident_count
        )
        assert int(registry.gauges[("epc_free_frames", ())]) == (
            epc.free_frames
        )

    def test_cache_registers_with_active_tracer(self):
        registry, tracer, epc = self._paging_workload()
        assert tracer.epcs == [epc]

    def test_counter_drift_is_detected(self):
        registry, tracer, epc = self._paging_workload()
        registry.inc("epc_ewb")  # one phantom eviction
        with pytest.raises(MetricsReconcileError, match="epc_ewb"):
            reconcile_metrics(registry, tracer)

    def test_gauge_drift_is_detected(self):
        registry, tracer, epc = self._paging_workload()
        registry.set_gauge(
            "epc_resident_pages", float(epc.resident_count + 1)
        )
        with pytest.raises(MetricsReconcileError, match="epc_resident_pages"):
            reconcile_metrics(registry, tracer)
