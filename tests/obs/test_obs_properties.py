"""Hypothesis properties for the tracer.

Two invariants, checked both on synthetic recordings (any valid
sequence of spans and charges) and on real traced experiments
(table2 and the switchless ablation):

* **Strict nesting** — spans never partially overlap: any two spans
  are either disjoint in sequence numbers or one contains the other,
  and that also holds within every attribution domain.
* **Exact self-cost sums** — the sum of span self-instructions plus
  the orphan bucket equals each accountant's per-domain counters,
  integer for integer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import experiments, obs
from repro.cost import CostAccountant

# One synthetic op: 0 = open span, 1 = close innermost span, 2 = charge
# normal, 3 = charge sgx, 4 = switch domain (push/pop alternating).
_ops = st.lists(st.integers(min_value=0, max_value=4), max_size=60)


def _interpret(tracer, acct, ops):
    """Play an op sequence against the tracer, keeping nesting valid."""
    open_spans = []
    domains = []
    try:
        for n, op in enumerate(ops):
            if op == 0:
                cm = tracer.span(f"s{n}")
                cm.__enter__()
                open_spans.append(cm)
            elif op == 1 and open_spans:
                open_spans.pop().__exit__(None, None, None)
            elif op == 2:
                acct.charge_normal(10 + n)
            elif op == 3:
                acct.charge_sgx(1)
            elif op == 4:
                if domains:
                    domains.pop().__exit__(None, None, None)
                else:
                    cm = acct.attribute(f"enclave:d{n % 3}")
                    cm.__enter__()
                    domains.append(cm)
    finally:
        while open_spans:
            open_spans.pop().__exit__(None, None, None)
        while domains:
            domains.pop().__exit__(None, None, None)


def assert_strictly_nested(tracer):
    spans = [s for s in tracer.spans if s.closed]
    for a in spans:
        assert a.open_seq < a.close_seq
        for b in spans:
            if a is b:
                continue
            disjoint = a.close_seq < b.open_seq or b.close_seq < a.open_seq
            a_in_b = b.open_seq < a.open_seq and a.close_seq < b.close_seq
            b_in_a = a.open_seq < b.open_seq and b.close_seq < a.close_seq
            assert disjoint or a_in_b or b_in_a, (
                f"spans {a.name} and {b.name} partially overlap"
            )
    # Parent links agree with the interval containment.
    by_id = {s.span_id: s for s in tracer.spans}
    for s in spans:
        if s.parent_id is not None:
            p = by_id[s.parent_id]
            if p.closed:
                assert p.open_seq < s.open_seq and s.close_seq <= p.close_seq


def assert_sums_match(tracer):
    sums = {}
    for span in tracer.spans:
        for key, (sgx, normal) in span.self_counts.items():
            cell = sums.setdefault(key, [0, 0])
            cell[0] += sgx
            cell[1] += normal
    for key, (sgx, normal) in tracer.orphans.items():
        cell = sums.setdefault(key, [0, 0])
        cell[0] += sgx
        cell[1] += normal
    for acct in tracer.accountants:
        if acct.source in tracer.reset_sources:
            continue
        for domain, counter in acct.domains().items():
            got = sums.get((acct.source, domain), [0, 0])
            assert got[0] == counter.sgx_instructions
            assert got[1] == counter.normal_instructions


@settings(max_examples=50, deadline=None)
@given(ops=_ops)
def test_property_synthetic_recordings_nest_and_reconcile(ops):
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        acct = CostAccountant(name="synth")
        _interpret(tracer, acct, ops)
        assert_strictly_nested(tracer)
        assert_sums_match(tracer)
        obs.reconcile(tracer)


def test_property_table2_trace_nests_and_reconciles():
    tracer = obs.Tracer()
    experiments.run_table2(trace=tracer)
    assert_strictly_nested(tracer)
    assert_sums_match(tracer)


@settings(max_examples=5, deadline=None)
@given(
    n_ocalls=st.integers(min_value=1, max_value=12),
    batch=st.integers(min_value=1, max_value=8),
)
def test_property_switchless_trace_nests_and_reconciles(n_ocalls, batch):
    tracer = obs.Tracer()
    experiments.run_switchless_ablation(
        batch_sizes=(batch,), n_ocalls=n_ocalls, trace=tracer
    )
    assert_strictly_nested(tracer)
    assert_sums_match(tracer)
    obs.reconcile(tracer)
