"""Perf-regression tracker tests: perf-report flattening, history I/O
strictness, noise-aware comparison (including the synthetic 2x-slowdown
gate), and the track-and-append workflow."""

import json
import pathlib

import pytest

from repro.obs import regress
from repro.obs.regress import (
    DEFAULT_WINDOW,
    HISTORY_SCHEMA,
    MODELED_MIN_REL,
    WALL_CLOCK_MIN_REL,
    HistoryError,
    append_history,
    compare,
    entry_from_perf,
    format_compare,
    load_history,
    track,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _perf_doc(routing_s=0.4, events_per_s=4_000_000.0, crossings=0.5):
    """A minimal but representative perf report."""
    return {
        "generated_by": "python -m repro bench",
        "smoke": False,
        "repeats": 3,
        "env": {"python": "3.11"},
        "scenarios": {
            "load_routing": {"warm_median_s": routing_s, "cold_s": 1.0},
        },
        "kernel": {
            "kernel_events": {"fast_events_per_s": events_per_s},
        },
        "rings": {
            "grid": [
                {"mode": "rings", "depth": 2,
                 "crossings_per_record": crossings},
                {"mode": "switchless", "depth": 1,
                 "crossings_per_record": 0.0},
            ],
        },
    }


class TestEntryFromPerf:
    def test_flattens_the_three_axes(self):
        entry = entry_from_perf(_perf_doc())
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["smoke"] is False
        assert entry["metrics"] == {
            "scenario:load_routing:warm_median_s": 0.4,
            "kernel:kernel_events:events_per_s": 4_000_000.0,
            "rings:rings@2:crossings_per_record": 0.5,
            "rings:switchless@1:crossings_per_record": 0.0,
        }

    def test_committed_bench_perf_flattens(self):
        doc = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        entry = entry_from_perf(doc)
        assert entry["schema"] == HISTORY_SCHEMA
        assert any(
            k.startswith("scenario:") for k in entry["metrics"]
        ) and any(k.startswith("rings:") for k in entry["metrics"])

    def test_committed_history_matches_committed_perf(self):
        # The seeded history line IS the committed perf report,
        # flattened — re-deriving it must agree metric for metric.
        doc = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        (head,) = load_history(str(REPO_ROOT / "BENCH_history.jsonl"))
        assert head["metrics"] == entry_from_perf(doc)["metrics"]
        assert head["smoke"] is False


class TestHistoryIO:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        entry = entry_from_perf(_perf_doc())
        append_history(path, entry)
        append_history(path, entry)
        assert load_history(path) == [entry, entry]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(HistoryError, match="not JSON"):
            load_history(str(path))

    def test_foreign_schema_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"schema": "other/9", "metrics": {}}) + "\n")
        with pytest.raises(HistoryError, match="schema"):
            load_history(str(path))

    def test_missing_metrics_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"schema": HISTORY_SCHEMA}) + "\n")
        with pytest.raises(HistoryError, match="metrics"):
            load_history(str(path))

    def test_append_refuses_foreign_schema(self, tmp_path):
        with pytest.raises(HistoryError, match="refusing"):
            append_history(str(tmp_path / "h.jsonl"), {"schema": "other/9"})


class TestCompare:
    def _history(self, n=3, **kwargs):
        return [entry_from_perf(_perf_doc(**kwargs)) for _ in range(n)]

    def test_identical_run_is_all_ok(self):
        report = compare(entry_from_perf(_perf_doc()), self._history())
        assert report.ok
        assert {c.status for c in report.comparisons} == {"ok"}

    def test_two_x_slowdown_is_a_regression(self):
        report = compare(
            entry_from_perf(_perf_doc(routing_s=0.8)), self._history()
        )
        assert not report.ok
        (bad,) = report.regressions
        assert bad.metric == "scenario:load_routing:warm_median_s"
        assert bad.change_rel == pytest.approx(1.0)  # 100% worse
        assert bad.threshold == pytest.approx(WALL_CLOCK_MIN_REL)

    def test_throughput_drop_is_a_regression(self):
        report = compare(
            entry_from_perf(_perf_doc(events_per_s=1_000_000.0)),
            self._history(),
        )
        assert [c.metric for c in report.regressions] == [
            "kernel:kernel_events:events_per_s"
        ]

    def test_modeled_metric_uses_tight_floor(self):
        # +2% crossings: tiny for wall clock, but modeled metrics are
        # deterministic — past the 1% floor it must fail.
        report = compare(
            entry_from_perf(_perf_doc(crossings=0.51)), self._history()
        )
        (bad,) = report.regressions
        assert bad.metric == "rings:rings@2:crossings_per_record"
        assert bad.threshold == pytest.approx(MODELED_MIN_REL)

    def test_big_improvement_reported_not_failed(self):
        report = compare(
            entry_from_perf(_perf_doc(routing_s=0.1)), self._history()
        )
        assert report.ok
        statuses = {c.metric: c.status for c in report.comparisons}
        assert statuses["scenario:load_routing:warm_median_s"] == "improved"

    def test_unseen_metric_is_new_and_never_fails(self):
        entry = entry_from_perf(_perf_doc())
        entry["metrics"]["scenario:fresh:warm_median_s"] = 9.9
        report = compare(entry, self._history())
        assert report.ok
        (new,) = [c for c in report.comparisons if c.status == "new"]
        assert new.metric == "scenario:fresh:warm_median_s"

    def test_zero_baseline_regresses_on_any_nonzero(self):
        entry = entry_from_perf(_perf_doc())
        entry["metrics"]["rings:switchless@1:crossings_per_record"] = 0.25
        report = compare(entry, self._history())
        (bad,) = report.regressions
        assert bad.metric == "rings:switchless@1:crossings_per_record"
        assert bad.change_rel == float("inf")

    def test_smoke_entries_never_judge_full_runs(self):
        smoke_history = self._history(routing_s=0.01)
        for h in smoke_history:
            h["smoke"] = True
        # vs the fast smoke history this would be a 40x regression,
        # but smoke entries are filtered out -> everything is "new".
        report = compare(entry_from_perf(_perf_doc()), smoke_history)
        assert report.ok
        assert {c.status for c in report.comparisons} == {"new"}

    def test_noisy_baseline_widens_threshold(self):
        history = [
            entry_from_perf(_perf_doc(routing_s=s))
            for s in (0.2, 0.4, 0.6, 0.4, 0.2)
        ]
        report = compare(entry_from_perf(_perf_doc(routing_s=0.4)), history)
        (c,) = [
            x for x in report.comparisons
            if x.metric == "scenario:load_routing:warm_median_s"
        ]
        # median 0.4, MAD 0.2 -> 3*0.2/0.4 = 1.5 beats the 30% floor.
        assert c.threshold == pytest.approx(1.5)
        assert c.window == DEFAULT_WINDOW

    def test_format_names_the_damage(self):
        report = compare(
            entry_from_perf(_perf_doc(routing_s=0.8)), self._history()
        )
        text = format_compare(report)
        assert "1 regression(s)" in text
        assert "100.0% worse, threshold 30.0%" in text


class TestTrack:
    def test_first_run_seeds_history(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        report = track(_perf_doc(), history_path=path)
        assert report.ok
        assert {c.status for c in report.comparisons} == {"new"}
        assert len(load_history(path)) == 1

    def test_clean_run_appends(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        track(_perf_doc(), history_path=path)
        report = track(_perf_doc(), history_path=path)
        assert report.ok
        assert len(load_history(path)) == 2

    def test_regressing_run_is_not_appended(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        track(_perf_doc(), history_path=path)
        report = track(_perf_doc(routing_s=0.8), history_path=path)
        assert not report.ok
        # The bad run must not poison the baseline it failed against.
        assert len(load_history(path)) == 1

    def test_append_false_only_compares(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        track(_perf_doc(), history_path=path)
        track(_perf_doc(), history_path=path, append=False)
        assert len(load_history(path)) == 1
