"""Hypothesis properties for the metrics registry.

Two generators feed the same invariant — summed metric series reconcile
*integer-exactly* with every ``CostAccountant`` counter and with
``obs.reconcile()``:

* synthetic recordings (any valid sequence of spans, charges and
  domain switches, extended with crossing/switchless/fault/allocation
  charges so every reconciled family is exercised), and
* random scheduler programs executed on BOTH event kernels
  (:mod:`repro.net.sim` and the frozen :mod:`repro.net.sim_reference`):
  conformant kernels must charge identically, so the two runs must
  also export byte-identical OpenMetrics time-series.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cost import CostAccountant
from repro.net import sim, sim_reference
from repro.obs.metrics import MetricsRegistry, openmetrics_timeseries

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))

# Accountant Counter field -> the metric family mirroring it.
_FAMILIES = {
    "sgx_instructions": "sgx_instructions",
    "normal_instructions": "normal_instructions",
    "enclave_crossings": "event:crossing",
    "switchless_calls": "event:switchless_hit",
    "faults_injected": "faults_injected",
    "allocations": "allocations",
}


def assert_families_match(registry, tracer):
    """Every accountant field equals its metric family, int for int."""
    for acct in tracer.accountants:
        if not acct.enabled or acct.source in tracer.reset_sources:
            continue
        for domain, counter in acct.domains().items():
            labels = (("domain", domain), ("source", acct.source))
            fields = counter.as_dict()
            for field, family in _FAMILIES.items():
                got = registry.counters.get((family, labels), 0)
                assert got == fields[field], (
                    f"{acct.source}/{domain}: {family}={got} != "
                    f"{field}={fields[field]}"
                )


# -- synthetic recordings ---------------------------------------------------

# Ops 0-4 mirror test_obs_properties._interpret; 5-8 add the remaining
# reconciled families (crossing, switchless, fault, allocation).
_ops = st.lists(st.integers(min_value=0, max_value=8), max_size=60)


def _interpret(tracer, acct, ops):
    open_spans = []
    domains = []
    try:
        for n, op in enumerate(ops):
            if op == 0:
                cm = tracer.span(f"s{n}")
                cm.__enter__()
                open_spans.append(cm)
            elif op == 1 and open_spans:
                open_spans.pop().__exit__(None, None, None)
            elif op == 2:
                acct.charge_normal(10 + n)
            elif op == 3:
                acct.charge_sgx(1)
            elif op == 4:
                if domains:
                    domains.pop().__exit__(None, None, None)
                else:
                    cm = acct.attribute(f"enclave:d{n % 3}")
                    cm.__enter__()
                    domains.append(cm)
            elif op == 5:
                acct.charge_crossing(1 + n % 2)
            elif op == 6:
                acct.charge_switchless()
            elif op == 7:
                acct.charge_fault()
            elif op == 8:
                acct.charge_allocation(n % 3 + 1)
    finally:
        while open_spans:
            open_spans.pop().__exit__(None, None, None)
        while domains:
            domains.pop().__exit__(None, None, None)


@settings(max_examples=50, deadline=None)
@given(ops=_ops)
def test_property_synthetic_recordings_reconcile_metrics(ops):
    registry = MetricsRegistry(interval=1000)
    tracer = obs.Tracer(metrics=registry)
    with obs.tracing(tracer):
        acct = CostAccountant(name="synth")
        _interpret(tracer, acct, ops)
        assert_families_match(registry, tracer)
        obs.reconcile(tracer)  # includes reconcile_metrics


# -- random programs on both kernels ----------------------------------------
#
# A trimmed version of the conformance interpreter: processes sleep,
# yield, and exchange messages over two queues; every op charges the
# accountant under a pid-derived domain (normal always, sgx on sleep,
# crossing on put, switchless/fault/allocation keyed off the step) so
# the registry sees every family with a non-trivially advancing clock.

_dt = st.sampled_from([0.0, 0.25, 0.5, 1.0, 3.0])
_timeout = st.sampled_from([None, 0.0, 0.5, 1.0])
_queue_idx = st.integers(min_value=0, max_value=1)

_op = st.one_of(
    st.tuples(st.just("sleep"), _dt),
    st.tuples(st.just("yield")),
    st.tuples(st.just("put"), _queue_idx),
    st.tuples(st.just("get"), _queue_idx, _timeout),
)
_program = st.lists(st.lists(_op, max_size=8), min_size=1, max_size=3)


def run_metered_program(sim_mod, program, interval):
    """Run one program under a metered tracer; return all the pieces."""
    from repro.errors import SimTimeout

    registry = MetricsRegistry(interval=interval)
    tracer = obs.Tracer(metrics=registry)
    with obs.tracing(tracer):
        simulator = sim_mod.Simulator()
        accountant = CostAccountant("metered")
        queues = [simulator.queue(f"q{i}") for i in range(2)]

        def body(spec, pid):
            domain = f"dom{pid % 3}"
            for step, op in enumerate(spec):
                kind = op[0]
                with accountant.attribute(domain):
                    accountant.charge_normal(100 + step)
                    if kind == "sleep":
                        accountant.charge_sgx(2)
                    elif kind == "put":
                        accountant.charge_crossing()
                        if step % 2:
                            accountant.charge_switchless()
                    elif kind == "get":
                        accountant.charge_allocation()
                if kind == "sleep":
                    yield simulator.sleep(op[1])
                elif kind == "yield":
                    yield None
                elif kind == "put":
                    queues[op[1] % len(queues)].put((pid, step))
                elif kind == "get":
                    try:
                        yield queues[op[1] % len(queues)].get(timeout=op[2])
                    except SimTimeout:
                        with accountant.attribute(domain):
                            accountant.charge_fault()

        for pid, spec in enumerate(program):
            simulator.spawn(body(spec, pid), f"p{pid}")
        simulator.run()
        assert_families_match(registry, tracer)
        obs.reconcile(tracer)
    return registry, tracer, accountant


@settings(max_examples=EXAMPLES, deadline=None)
@given(program=_program, interval=st.sampled_from([100, 1000, 100_000]))
def test_property_both_kernels_reconcile_and_export_identically(
    program, interval
):
    fast = run_metered_program(sim, program, interval)
    reference = run_metered_program(sim_reference, program, interval)
    # Conformant kernels charge identically, so the accountants...
    assert (
        {d: c.as_dict() for d, c in fast[2].domains().items()}
        == {d: c.as_dict() for d, c in reference[2].domains().items()}
    )
    # ...and the sampled, timestamped exports match byte for byte.
    assert openmetrics_timeseries(fast[0]) == openmetrics_timeseries(
        reference[0]
    )
