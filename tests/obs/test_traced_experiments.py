"""End-to-end tracing of the paper experiments.

The acceptance bar for the tracer: a traced ``run_table4`` emits a
Perfetto-loadable trace whose per-domain span cycle totals reconcile
*exactly* (integer instruction counts, asserted — not eyeballed) with
the Table 4 accountant numbers, and every golden table output is
byte-identical with tracing off and on.
"""

import json

import pytest

from repro import experiments, obs
from repro.cost import DEFAULT_MODEL


def _span_sums(tracer):
    """Independent tally of (sgx, normal) per (source, domain) from the
    raw spans + orphan bucket — deliberately not reusing reconcile()."""
    sums = {}
    for span in tracer.spans:
        for key, (sgx, normal) in span.self_counts.items():
            cell = sums.setdefault(key, [0, 0])
            cell[0] += sgx
            cell[1] += normal
    for key, (sgx, normal) in tracer.orphans.items():
        cell = sums.setdefault(key, [0, 0])
        cell[0] += sgx
        cell[1] += normal
    return sums


class TestTable4Acceptance:
    @pytest.fixture(scope="class")
    def traced_table4(self):
        tracer = obs.Tracer()
        sgx, native = experiments.run_table4(n_ases=30, trace=tracer)
        return tracer, sgx, native

    def test_reconciles_exactly(self, traced_table4):
        tracer, sgx, native = traced_table4
        totals = obs.reconcile(tracer)  # raises on any integer mismatch
        # The per-domain cycles reconcile() returns are exactly the
        # numbers the Table 4 report is built from.
        for acct in tracer.accountants:
            if acct.source in tracer.reset_sources:
                continue
            for domain, counter in acct.domains().items():
                assert totals[acct.source][domain] == DEFAULT_MODEL.cycles(
                    counter.sgx_instructions, counter.normal_instructions
                )

    def test_span_sums_equal_accountant_counters(self, traced_table4):
        tracer, _, _ = traced_table4
        sums = _span_sums(tracer)
        checked = 0
        for acct in tracer.accountants:
            assert acct.source not in tracer.reset_sources
            for domain, counter in acct.domains().items():
                got = sums.get((acct.source, domain), [0, 0])
                assert got[0] == counter.sgx_instructions, (acct.source, domain)
                assert got[1] == counter.normal_instructions, (acct.source, domain)
                checked += 1
        assert checked > 0

    def test_clock_equals_total_charges(self, traced_table4):
        tracer, _, _ = traced_table4
        total_sgx = sum(c[0] for c in _span_sums(tracer).values())
        total_normal = sum(c[1] for c in _span_sums(tracer).values())
        assert tracer.clock == (total_sgx, total_normal)

    def test_json_export_is_perfetto_loadable(self, traced_table4):
        tracer, _, _ = traced_table4
        payload = json.loads(obs.trace_event_json(tracer))
        events = obs.validate_trace_events(payload)
        assert len(events) > len(tracer.spans)  # B + E + instants + meta
        assert "traceEvents" in payload and "metadata" in payload

    def test_controller_domains_are_in_the_trace(self, traced_table4):
        tracer, sgx, _ = traced_table4
        sources = {a.source for a in tracer.accountants}
        assert "idc" in sources           # the SGX controller platform
        assert "idc-native" in sources    # the native baseline
        span_names = {s.name for s in tracer.spans}
        assert "routing:distribute_routes" in span_names
        assert any(name.startswith("ecall:") for name in span_names)
        assert any(name.startswith("attest:") for name in span_names)


class TestGoldenOutputsUnchangedByTracing:
    """Tracing must observe, never perturb: formatted tables are
    byte-identical with tracing off and on."""

    def test_table1(self):
        off = experiments.format_table1(experiments.run_table1())
        on = experiments.format_table1(experiments.run_table1(trace=obs.Tracer()))
        assert off == on

    def test_table2(self):
        off = experiments.format_table2(experiments.run_table2())
        on = experiments.format_table2(experiments.run_table2(trace=obs.Tracer()))
        assert off == on

    def test_table3(self):
        off = experiments.format_table3(experiments.run_table3())
        on = experiments.format_table3(experiments.run_table3(trace=obs.Tracer()))
        assert off == on

    def test_table4(self):
        off = experiments.format_table4(
            *experiments.run_table4(n_ases=8, seed=b"golden")
        )
        on = experiments.format_table4(
            *experiments.run_table4(n_ases=8, seed=b"golden", trace=obs.Tracer())
        )
        assert off == on

    def test_switchless(self):
        off = experiments.format_switchless_ablation(
            experiments.run_switchless_ablation(batch_sizes=(1, 10), n_ocalls=20)
        )
        on = experiments.format_switchless_ablation(
            experiments.run_switchless_ablation(
                batch_sizes=(1, 10), n_ocalls=20, trace=obs.Tracer()
            )
        )
        assert off == on


class TestTracedScenarios:
    def test_table1_reconciles(self):
        tracer = obs.Tracer()
        experiments.run_table1(trace=tracer)
        obs.reconcile(tracer)
        kinds = {s.kind for s in tracer.spans}
        assert {"scenario", "ecall", "attest", "launch", "sgx"} <= kinds

    def test_table2_reconciles_and_is_deterministic(self):
        traces = []
        for _ in range(2):
            tracer = obs.Tracer()
            experiments.run_table2(trace=tracer)
            obs.reconcile(tracer)
            traces.append(obs.trace_event_json(tracer))
        # Cycle clock + fixed seeds -> byte-identical traces.
        assert traces[0] == traces[1]

    def test_fault_matrix_trace_has_fault_instants(self):
        tracer = obs.Tracer()
        experiments.run_fault_matrix(
            seed=0, fault_classes=["drop"], scenarios=("middlebox",),
            trace=tracer,
        )
        fault_instants = [i for i in tracer.instants if i.name == "fault"]
        assert fault_instants
        assert all("kind" in i.args and "site" in i.args for i in fault_instants)

    def test_switchless_trace_has_hits_and_fallbacks(self):
        tracer = obs.Tracer()
        experiments.run_switchless_ablation(
            batch_sizes=(1,), n_ocalls=40, trace=tracer
        )
        obs.reconcile(tracer)
        names = {i.name for i in tracer.instants}
        assert "switchless_hit" in names
        assert "crossing" in names
