"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro import obs
from repro.cost import DEFAULT_MODEL, CostAccountant, CostModel
from repro.cost import context as cost_context
from repro.cost.accountant import active_tracer


class TestAttach:
    def test_accountants_auto_attach_while_tracing(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="party")
        assert acct in tracer.accountants
        assert acct.source == "party"

    def test_same_name_gets_unique_sources(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            a = CostAccountant(name="host")
            b = CostAccountant(name="host")
            c = CostAccountant(name="host")
        assert [a.source, b.source, c.source] == ["host", "host#1", "host#2"]

    def test_anonymous_accountant_source(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant()
        assert acct.source == "acct"

    def test_attach_is_idempotent(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            tracer.attach(acct)
        assert tracer.accountants.count(acct) == 1

    def test_tracing_detaches_on_exit(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            assert acct.tracer is tracer
        assert acct.tracer is None
        # Charges after detach must not advance the tracer's clock.
        acct.charge_normal(100)
        assert tracer.clock == (0, 0)


class TestTracingContext:
    def test_none_is_passthrough(self):
        with obs.tracing(None) as t:
            assert t is None
            assert obs.current_tracer() is None

    def test_reentrant_with_same_tracer(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            with obs.tracing(tracer):
                assert obs.current_tracer() is tracer
            # Inner exit must not uninstall the outer tracer.
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is None

    def test_different_tracer_raises(self):
        with obs.tracing(obs.Tracer()):
            with pytest.raises(RuntimeError):
                with obs.tracing(obs.Tracer()):
                    pass

    def test_uninstalls_on_exception(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with obs.tracing(tracer):
                raise ValueError
        assert active_tracer() is None


class TestClockAndCharges:
    def test_clock_advances_with_charges(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_sgx(3)
            acct.charge_normal(100)
        assert tracer.clock == (3, 100)
        assert tracer.cycles_at(3, 100) == DEFAULT_MODEL.cycles(3, 100)

    def test_custom_model_clock(self):
        model = CostModel(sgx_instruction_cycles=7, cycles_per_instruction=2.0)
        tracer = obs.Tracer(model=model)
        assert tracer.cycles_at(1, 10) == model.cycles(1, 10)

    def test_charges_outside_spans_are_orphans(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with acct.attribute("enclave:x"):
                acct.charge_sgx(2)
                acct.charge_normal(50)
        assert tracer.orphans == {("x", "enclave:x"): [2, 50]}

    def test_charges_inside_span_land_in_self_counts(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with tracer.span("work"):
                acct.charge_normal(10)
        (span,) = tracer.spans
        assert span.self_counts == {("x", "untrusted"): [0, 10]}
        assert span.self_instructions() == (0, 10)

    def test_nested_span_gets_innermost_charges(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with tracer.span("outer"):
                acct.charge_normal(1)
                with tracer.span("inner"):
                    acct.charge_normal(10)
                acct.charge_normal(100)
        outer, inner = tracer.spans
        assert outer.name == "outer" and inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.self_instructions() == (0, 101)
        assert inner.self_instructions() == (0, 10)

    def test_span_start_end_clocks_bracket_charges(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            with tracer.span("work"):
                acct.charge_normal(10)
        (span,) = tracer.spans
        assert (span.start_sgx, span.start_normal) == (0, 5)
        assert (span.end_sgx, span.end_normal) == (0, 15)
        assert span.closed
        assert span.open_seq < span.close_seq


class TestSpanStack:
    def test_exception_marks_error_and_unwinds(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError
        (span,) = tracer.spans
        assert span.error
        assert span.closed
        assert tracer._stack == []

    def test_module_span_is_noop_when_off(self):
        # No tracer active anywhere: the helper returns the shared
        # null context and records nothing.
        acct = CostAccountant(name="x")
        with cost_context.use_accountant(acct):
            with obs.span("ignored"):
                acct.charge_normal(5)
        assert acct.total().normal_instructions == 5

    def test_module_span_uses_ambient_accountant(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="party")
            with cost_context.use_accountant(acct):
                with acct.attribute("enclave:e"):
                    with obs.span("work", kind="app"):
                        cost_context.charge_normal(9)
        (span,) = tracer.spans
        assert span.source == "party"
        assert span.domain == "enclave:e"
        assert span.kind == "app"
        assert span.self_counts == {("party", "enclave:e"): [0, 9]}

    def test_module_span_falls_back_to_global_tracer(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            with obs.span("no-ambient-accountant"):
                pass
        (span,) = tracer.spans
        assert (span.source, span.domain) == ("", "")

    def test_traced_decorator(self):
        tracer = obs.Tracer()

        @obs.traced("decorated", kind="app")
        def fn(x):
            return x * 2

        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with cost_context.use_accountant(acct):
                assert fn(21) == 42
        (span,) = tracer.spans
        assert span.name == "decorated"


class TestInstantsAndReset:
    def test_instant_records_at_current_clock(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(7)
            with cost_context.use_accountant(acct):
                obs.instant("retransmission", count=3, stream="a:1")
        (inst,) = [i for i in tracer.instants]
        assert inst.name == "retransmission"
        assert inst.count == 3
        assert inst.args == {"stream": "a:1"}
        assert (inst.ts_sgx, inst.ts_normal) == (0, 7)

    def test_crossing_and_switchless_emit_instants(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with acct.attribute("enclave:x"):
                acct.charge_crossing(2)
                acct.charge_switchless(3)
        names = [(i.name, i.count) for i in tracer.instants]
        assert names == [("crossing", 2), ("switchless_hit", 3)]

    def test_instant_noop_when_off(self):
        obs.instant("nothing-listens")  # must not raise

    def test_reset_marks_source(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            acct.reset()
        assert "x" in tracer.reset_sources


class TestZeroCostOff:
    def test_accountant_without_tracing_has_no_tracer(self):
        acct = CostAccountant(name="x")
        assert acct.tracer is None

    def test_off_path_uses_shared_null_span(self):
        from repro.obs import tracer as tracer_mod

        assert obs.span("a") is tracer_mod._NULL_SPAN
        assert obs.span("b") is tracer_mod._NULL_SPAN
