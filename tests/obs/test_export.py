"""Exporter tests: trace_event JSON, folded stacks, Prometheus text,
top-cost-sites, and exact reconciliation."""

import json

import pytest

from repro import obs
from repro.cost import DEFAULT_MODEL, CostAccountant
from repro.obs import CYCLES_PER_TRACE_US


def _small_recording():
    """One source, one enclave domain, two nested spans + instants."""
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        acct = CostAccountant(name="host")
        with acct.attribute("enclave:e"):
            with tracer.span("outer", kind="ecall", domain="enclave:e", source="host"):
                acct.charge_sgx(2)
                acct.charge_normal(100)
                acct.charge_crossing(2)
                with tracer.span(
                    "inner", kind="io", domain="enclave:e", source="host"
                ):
                    acct.charge_normal(50)
        acct.charge_normal(7)  # orphan, untrusted
    return tracer, acct


class TestTraceEvents:
    def test_json_round_trip_validates(self):
        tracer, _ = _small_recording()
        payload = json.loads(obs.trace_event_json(tracer, indent=2))
        events = obs.validate_trace_events(payload)
        assert any(e["ph"] == "B" for e in events)
        assert payload["metadata"]["sgx_instruction_cycles"] == (
            DEFAULT_MODEL.sgx_instruction_cycles
        )

    def test_process_and_thread_metadata(self):
        tracer, _ = _small_recording()
        events = obs.to_trace_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "host") in names
        assert ("thread_name", "enclave:e") in names

    def test_timestamps_are_cycles_over_1000(self):
        tracer, _ = _small_recording()
        events = obs.to_trace_events(tracer)
        ends = [e for e in events if e["ph"] == "E" and e["name"] == "outer"]
        expected = DEFAULT_MODEL.cycles(2, 150) / CYCLES_PER_TRACE_US
        assert ends[0]["ts"] == pytest.approx(expected)

    def test_b_args_carry_self_cost(self):
        tracer, _ = _small_recording()
        events = obs.to_trace_events(tracer)
        outer = next(e for e in events if e["ph"] == "B" and e["name"] == "outer")
        assert outer["args"]["self_sgx_instructions"] == 2
        assert outer["args"]["self_normal_instructions"] == 100
        assert outer["cat"] == "ecall"

    def test_instants_present_with_scope(self):
        tracer, _ = _small_recording()
        events = obs.to_trace_events(tracer)
        crossings = [e for e in events if e["ph"] == "i" and e["name"] == "crossing"]
        assert crossings and crossings[0]["s"] == "t"
        assert crossings[0]["args"]["count"] == 2

    def test_unclosed_span_clamped_to_final_clock(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            cm = tracer.span("never-closed")
            cm.__enter__()
            acct.charge_normal(10)
        # The recording ends with the span still open (crashed run):
        # export must still emit a balanced, validating stream.
        events = obs.validate_trace_events(obs.to_trace_events(tracer))
        end = next(e for e in events if e["ph"] == "E")
        assert end["ts"] == pytest.approx(
            DEFAULT_MODEL.cycles(0, 10) / CYCLES_PER_TRACE_US
        )


class TestValidateTraceEvents:
    def test_accepts_bare_list(self):
        assert obs.validate_trace_events([]) == []

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            obs.validate_trace_events({"traceEvents": "nope"})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            obs.validate_trace_events([{"ph": "B", "name": "x", "pid": 1, "tid": 1}])

    def test_rejects_decreasing_ts(self):
        events = [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 5.0},
            {"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 4.0},
        ]
        with pytest.raises(ValueError, match="ts"):
            obs.validate_trace_events(events)

    def test_rejects_unbalanced_begin(self):
        events = [{"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0}]
        with pytest.raises(ValueError, match="unbalanced"):
            obs.validate_trace_events(events)

    def test_rejects_mismatched_end(self):
        events = [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
            {"ph": "E", "name": "b", "pid": 1, "tid": 1, "ts": 0.0},
        ]
        with pytest.raises(ValueError, match="does not close"):
            obs.validate_trace_events(events)

    def test_rejects_end_with_empty_stack(self):
        events = [{"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 0.0}]
        with pytest.raises(ValueError, match="empty stack"):
            obs.validate_trace_events(events)

    def test_rejects_instant_without_scope(self):
        events = [{"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 0.0}]
        with pytest.raises(ValueError, match="scope"):
            obs.validate_trace_events(events)

    def test_rejects_unknown_phase(self):
        events = [{"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0.0}]
        with pytest.raises(ValueError, match="unsupported phase"):
            obs.validate_trace_events(events)


class TestFoldedStacks:
    def test_nested_frames_and_orphans(self):
        tracer, _ = _small_recording()
        out = obs.folded_stacks(tracer)
        lines = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in out.strip().splitlines()
        )
        assert lines["outer"] == int(round(DEFAULT_MODEL.cycles(2, 100)))
        assert lines["outer;inner"] == int(round(DEFAULT_MODEL.cycles(0, 50)))
        assert lines["[unattributed host:untrusted]"] == int(
            round(DEFAULT_MODEL.cycles(0, 7))
        )

    def test_zero_value_spans_skipped(self):
        tracer = obs.Tracer()
        with tracer.span("idle"):
            pass
        assert obs.folded_stacks(tracer) == ""

    def test_semicolons_in_names_sanitized(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with tracer.span("a;b"):
                acct.charge_normal(1000)
        assert "a,b " in obs.folded_stacks(tracer)


class TestPrometheusText:
    def test_contains_all_metric_families(self):
        tracer, _ = _small_recording()
        text = obs.prometheus_text(tracer)
        assert 'repro_trace_span_self_cycles_total{name="outer",kind="ecall"}' in text
        assert 'repro_trace_span_count{name="inner",kind="io"} 1' in text
        assert 'repro_trace_events_total{name="crossing"} 2' in text
        assert (
            'repro_domain_sgx_instructions_total{source="host",domain="enclave:e"} 2'
            in text
        )
        assert "repro_trace_clock_cycles" in text

    def test_label_escaping(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            with tracer.span('we"ird'):
                acct.charge_normal(1)
        assert 'name="we\\"ird"' in obs.prometheus_text(tracer)

    def test_default_mode_has_no_openmetrics_artifacts(self):
        tracer, _ = _small_recording()
        text = obs.prometheus_text(tracer)
        assert "# EOF" not in text
        assert "# UNIT" not in text
        assert "repro_trace_span_count_total" not in text


class TestOpenMetricsMode:
    def test_golden_exposition(self):
        tracer, _ = _small_recording()
        text = obs.prometheus_text(tracer, openmetrics=True)
        # Family metadata drops _total; the unit rides along; samples
        # keep (or gain) the _total suffix; the document terminates.
        assert "# TYPE repro_trace_span_self_cycles counter" in text
        assert "# UNIT repro_trace_span_self_cycles cycles" in text
        assert "# UNIT repro_domain_sgx_instructions instructions" in text
        assert (
            'repro_trace_span_self_cycles_total{name="inner",kind="io"}'
            in text
        )
        assert (
            'repro_trace_span_count_total{name="inner",kind="io"} 1' in text
        )
        assert 'repro_trace_events_total{name="crossing"} 2' in text
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_trace_span_self_cycles_total" not in text

    def test_same_recording_exports_identically(self):
        a = obs.prometheus_text(_small_recording()[0], openmetrics=True)
        b = obs.prometheus_text(_small_recording()[0], openmetrics=True)
        assert a == b


class TestTopCostSites:
    def test_ranked_by_self_cycles(self):
        tracer, _ = _small_recording()
        sites = obs.top_cost_sites(tracer, n=2)
        assert [s[0] for s in sites] == ["outer", "inner"]
        name, kind, cycles, count = sites[0]
        assert kind == "ecall"
        assert cycles == pytest.approx(DEFAULT_MODEL.cycles(2, 100))
        assert count == 1

    def test_instants_rank_below_spans_by_count(self):
        tracer, _ = _small_recording()
        sites = obs.top_cost_sites(tracer, n=10)
        # Typed instants carry no cycles of their own but are visible,
        # after every nonzero span, as zero-cycle "event" rows.
        assert ("crossing", "event", 0.0, 2) in sites
        assert sites.index(("crossing", "event", 0.0, 2)) > sites.index(
            ("inner", "io", pytest.approx(DEFAULT_MODEL.cycles(0, 50)), 1)
        )


class TestReconcile:
    def test_exact_match_passes(self):
        tracer, acct = _small_recording()
        totals = obs.reconcile(tracer)
        assert totals["host"]["enclave:e"] == pytest.approx(
            DEFAULT_MODEL.cycles(2, 150)
        )
        assert totals["host"]["untrusted"] == pytest.approx(DEFAULT_MODEL.cycles(0, 7))

    def test_counter_tamper_detected(self):
        tracer, acct = _small_recording()
        acct.counter("enclave:e").normal_instructions += 1
        with pytest.raises(obs.ReconcileError, match="enclave:e"):
            obs.reconcile(tracer)

    def test_missing_crossing_instant_detected(self):
        tracer, acct = _small_recording()
        acct.counter("enclave:e").enclave_crossings += 1
        with pytest.raises(obs.ReconcileError, match="crossing"):
            obs.reconcile(tracer)

    def test_reset_source_is_skipped(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            acct.reset()
            acct.charge_normal(3)
        # Counters no longer cover the trace's history; reconcile must
        # neither fail nor report the reset source.
        assert "x" not in obs.reconcile(tracer)

    def test_traced_charges_without_counter_detected(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            acct = CostAccountant(name="x")
            acct.charge_normal(5)
            acct._counters.clear()  # counters vanish without on_reset
        with pytest.raises(obs.ReconcileError, match="no matching counter"):
            obs.reconcile(tracer)
