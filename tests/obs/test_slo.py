"""SLO/health engine tests: the three evaluator kinds on synthetic
registries, the default per-scenario SLO sets, and end-to-end health
runs (healthy baseline + deliberate fault-injected breach)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SloSpec,
    default_slos,
    evaluate_slos,
    export_health_timeseries,
    format_health_report,
    run_health,
)


def _burn_spec(objective=0.01):
    return SloSpec(
        name="avail", kind="burn_rate", bad="bad", total="total",
        objective=objective,
    )


def _steady_registry(bad_until=0, ticks=100, interval=100, bad_at=()):
    """One 'total' per tick; 'bad' too for the first ``bad_until``
    ticks and at each tick listed in ``bad_at``."""
    reg = MetricsRegistry(interval=interval)
    for t in range(1, ticks + 1):
        reg.inc("total")
        if t <= bad_until or t in bad_at:
            reg.inc("bad")
        reg.on_clock(t * float(interval))
    return reg


class TestBurnRate:
    def test_clean_run_is_ok(self):
        reg = _steady_registry(bad_until=0)
        (result,) = evaluate_slos([_burn_spec()], reg)
        assert result.ok
        assert result.value == 0.0
        assert result.alerts == []

    def test_sustained_burn_pages_and_breaches(self):
        reg = _steady_registry(bad_until=50)
        (result,) = evaluate_slos([_burn_spec()], reg)
        assert not result.ok
        assert result.value == pytest.approx(0.5)
        assert result.alerts  # both windows saw >factor*objective burn
        alert = result.alerts[0]
        assert alert.long_burn > alert.factor
        assert alert.short_burn > alert.factor

    def test_burn_within_objective_is_ok(self):
        # One mid-run bad tick out of 1000 against a 5% objective:
        # overall 0.001 and neither window rule sees both windows burn
        # past its factor.  (An *early* bad tick would page — at run
        # start the windows are tiny, which is the intended fast-burn
        # sensitivity.)
        reg = _steady_registry(ticks=1000, bad_at=(500,))
        (result,) = evaluate_slos([_burn_spec(objective=0.05)], reg)
        assert result.ok
        assert result.value == pytest.approx(0.001)

    def test_empty_total_series_is_vacuously_ok(self):
        reg = MetricsRegistry(interval=100)
        (result,) = evaluate_slos([_burn_spec()], reg)
        assert result.ok
        assert result.value == 0.0


class TestQuantile:
    def _spec(self, max_value):
        return SloSpec(
            name="p99", kind="quantile", histogram="lat", q=0.99,
            max_value=max_value,
        )

    def test_quantile_below_bound_is_ok(self):
        reg = MetricsRegistry()
        for v in [10] * 99 + [100_000]:
            reg.observe("lat", v)
        (result,) = evaluate_slos([self._spec(max_value=float(4 ** 9))], reg)
        assert result.ok  # p99 bucket 16 <= 4^9

    def test_quantile_above_bound_breaches(self):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.observe("lat", 10_000_000)
        (result,) = evaluate_slos([self._spec(max_value=1000.0)], reg)
        assert not result.ok
        assert result.value > 1000.0

    def test_empty_histogram_is_ok(self):
        (result,) = evaluate_slos([self._spec(max_value=1.0)],
                                  MetricsRegistry())
        assert result.ok
        assert result.value == 0.0


class TestRatio:
    def _spec(self, max_ratio):
        return SloSpec(
            name="budget", kind="ratio", numerator="crossings",
            denominator="events", max_ratio=max_ratio,
        )

    def test_ratio_under_budget_is_ok(self):
        reg = MetricsRegistry()
        reg.inc("crossings", 3)
        reg.inc("events", 10)
        (result,) = evaluate_slos([self._spec(max_ratio=0.5)], reg)
        assert result.ok
        assert result.value == pytest.approx(0.3)

    def test_ratio_over_budget_breaches(self):
        reg = MetricsRegistry()
        reg.inc("crossings", 30)
        reg.inc("events", 10)
        (result,) = evaluate_slos([self._spec(max_ratio=0.5)], reg)
        assert not result.ok

    def test_zero_denominator_is_zero_ratio(self):
        reg = MetricsRegistry()
        reg.inc("crossings", 5)
        (result,) = evaluate_slos([self._spec(max_ratio=0.5)], reg)
        assert result.ok
        assert result.value == 0.0


class TestDefaultSlos:
    @pytest.mark.parametrize("scenario", ["routing", "tor", "middlebox"])
    def test_every_scenario_has_the_four_axes(self, scenario):
        specs = default_slos(scenario)
        assert [s.name for s in specs] == [
            "availability",
            "fault-recovery",
            "p99-queueing-latency",
            "crossing-budget",
        ]
        assert {s.kind for s in specs} == {"burn_rate", "quantile", "ratio"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            default_slos("bitcoin")


class TestRunHealth:
    def test_routing_baseline_is_healthy(self):
        report = run_health("routing", seed=0)
        assert report.healthy
        assert len(report.results) == 4
        assert report.params["clients"] == 200
        # The registry sampled a real timeline and reconciled exactly.
        assert report.registry.samples
        assert report.registry.total("load_events") == 200.0

    def test_shard_crash_breaches_availability(self):
        report = run_health("routing", seed=0, shards=1, fault="shard_crash")
        assert not report.healthy
        breached = {r.spec.name for r in report.results if not r.ok}
        assert "availability" in breached

    def test_report_text_and_export(self):
        report = run_health("middlebox", seed=0)
        text = format_health_report(report)
        assert "Verdict: HEALTHY" in text
        assert "[OK    ] availability" in text
        om = export_health_timeseries(report)
        assert om.endswith("# EOF\n")
        assert "repro_load_events_total" in om

    def test_same_seed_runs_export_identically(self):
        a = export_health_timeseries(run_health("middlebox", seed=0))
        b = export_health_timeseries(run_health("middlebox", seed=0))
        assert a == b
