"""Determinism of the DRBG/Rng and number-theory primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg, Rng
from repro.crypto.numtheory import egcd, generate_prime, is_probable_prime, modinv
from repro.errors import CryptoError


class TestHmacDrbg:
    def test_same_seed_same_output(self):
        assert HmacDrbg(b"seed").generate(64) == HmacDrbg(b"seed").generate(64)

    def test_different_seed_different_output(self):
        assert HmacDrbg(b"a").generate(32) != HmacDrbg(b"b").generate(32)

    def test_personalization_separates_streams(self):
        assert (
            HmacDrbg(b"s", b"one").generate(32)
            != HmacDrbg(b"s", b"two").generate(32)
        )

    def test_generate_zero_bytes(self):
        assert HmacDrbg(b"s").generate(0) == b""

    def test_generate_negative_raises(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"s").generate(-1)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"s")
        b = HmacDrbg(b"s")
        a.generate(16)
        b.generate(16)
        a.reseed(b"fresh")
        assert a.generate(16) != b.generate(16)

    def test_sequential_output_not_repeating(self):
        drbg = HmacDrbg(b"s")
        chunks = {drbg.generate(32) for _ in range(20)}
        assert len(chunks) == 20

    def test_rejects_non_bytes_seed(self):
        with pytest.raises(CryptoError):
            HmacDrbg("string")  # type: ignore[arg-type]


class TestRng:
    def test_randint_bounds(self):
        rng = Rng(1)
        values = [rng.randint(3, 9) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 9
        assert set(values) == set(range(3, 10))  # all values hit

    def test_randint_single_value_range(self):
        assert Rng(1).randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        with pytest.raises(CryptoError):
            Rng(1).randint(5, 4)

    def test_randbits_width(self):
        rng = Rng(2)
        for bits in (1, 7, 8, 33, 128):
            assert 0 <= rng.randbits(bits) < (1 << bits)

    def test_random_in_unit_interval(self):
        rng = Rng(3)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_choice_and_sample(self):
        rng = Rng(4)
        population = list(range(10))
        assert rng.choice(population) in population
        picked = rng.sample(population, 4)
        assert len(set(picked)) == 4
        assert all(p in population for p in picked)

    def test_sample_too_large_raises(self):
        with pytest.raises(CryptoError):
            Rng(1).sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        rng = Rng(5)
        data = list(range(20))
        rng.shuffle(data)
        assert sorted(data) == list(range(20))

    def test_fork_streams_are_independent_and_stable(self):
        a = Rng(6).fork("x")
        b = Rng(6).fork("x")
        assert a.bytes(16) == b.bytes(16)

    def test_seed_types(self):
        assert Rng(b"bytes").bytes(8) != Rng("string").bytes(8)

    def test_determinism_across_instances(self):
        assert Rng(42, "lbl").bytes(32) == Rng(42, "lbl").bytes(32)


class TestNumberTheory:
    def test_small_primes(self):
        rng = Rng(0)
        for p in (2, 3, 5, 7, 97, 65537):
            assert is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = Rng(0)
        for n in (0, 1, 4, 100, 561, 65536, 7917):
            assert not is_probable_prime(n, rng)

    def test_carmichael_numbers_rejected(self):
        rng = Rng(0)
        for n in (561, 1105, 1729, 2465, 6601):
            assert not is_probable_prime(n, rng)

    def test_generate_prime_width_and_primality(self):
        rng = Rng(7)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p, rng)

    def test_generate_prime_too_small_raises(self):
        with pytest.raises(CryptoError):
            generate_prime(4, Rng(0))

    def test_egcd_identity(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_modinv(self):
        assert (3 * modinv(3, 11)) % 11 == 1

    def test_modinv_nonexistent_raises(self):
        with pytest.raises(CryptoError):
            modinv(6, 9)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(min_value=1, max_value=10**6), m=st.integers(min_value=2, max_value=10**6))
def test_property_modinv_when_coprime(a, m):
    from math import gcd

    if gcd(a, m) == 1:
        assert (a * modinv(a, m)) % m == 1
    else:
        with pytest.raises(CryptoError):
            modinv(a, m)
