"""SHA-256 / HMAC / CMAC / HKDF vectors and properties."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import Sha256, sha1, sha256
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.mac import aes_cmac, cmac_verify, hmac_sha256, hmac_verify

import pytest

from repro.errors import CryptoError


class TestSha256Reference:
    def test_empty(self):
        assert (
            Sha256().hexdigest()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert (
            Sha256(b"abc").hexdigest()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            Sha256(msg).hexdigest()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_incremental_update_equals_oneshot(self):
        h = Sha256()
        h.update(b"hello ").update(b"world")
        assert h.digest() == Sha256(b"hello world").digest()

    def test_digest_does_not_mutate_state(self):
        h = Sha256(b"abc")
        first = h.digest()
        assert h.digest() == first

    def test_boundary_lengths_match_hashlib(self):
        for size in (55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:size] if size <= 256 else b"x" * size
            data = (b"0123456789" * 20)[:size]
            assert Sha256(data).digest() == hashlib.sha256(data).digest()


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=300))
def test_property_pure_sha256_matches_hashlib(data):
    assert Sha256(data).digest() == hashlib.sha256(data).digest()


class TestFastWrappers:
    def test_sha256_wrapper_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_sha1_wrapper_matches_hashlib(self):
        assert sha1(b"abc") == hashlib.sha1(b"abc").digest()


class TestHmac:
    def test_rfc4231_case1(self):
        tag = hmac_sha256(b"\x0b" * 20, b"Hi There")
        assert tag.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case2(self):
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_long_key_is_hashed(self):
        # RFC 4231 test case 6: 131-byte key.
        tag = hmac_sha256(b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First")
        assert tag.hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    def test_verify_accepts_and_rejects(self):
        tag = hmac_sha256(b"key", b"msg")
        assert hmac_verify(b"key", b"msg", tag)
        assert not hmac_verify(b"key", b"msg2", tag)
        assert not hmac_verify(b"key2", b"msg", tag)


class TestCmac:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_rfc4493_empty(self):
        assert aes_cmac(self.KEY, b"").hex() == (
            "bb1d6929e95937287fa37d129b756746"
        )

    def test_rfc4493_one_block(self):
        msg = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert aes_cmac(self.KEY, msg).hex() == (
            "070a16b46b4d4144f79bdd9dd04a287c"
        )

    def test_rfc4493_40_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        )
        assert aes_cmac(self.KEY, msg).hex() == (
            "dfa66747de9ae63030ca32611497c827"
        )

    def test_cmac_verify(self):
        tag = aes_cmac(self.KEY, b"report body")
        assert cmac_verify(self.KEY, b"report body", tag)
        assert not cmac_verify(self.KEY, b"forged body", tag)

    def test_rejects_bad_key(self):
        with pytest.raises(CryptoError):
            aes_cmac(b"short", b"msg")


class TestHkdf:
    def test_rfc5869_case1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_oneshot_matches_extract_expand(self):
        assert hkdf(b"secret", b"salt", b"info", 64) == hkdf_expand(
            hkdf_extract(b"salt", b"secret"), b"info", 64
        )

    def test_length_zero(self):
        assert hkdf(b"x", length=0) == b""

    def test_rejects_too_long(self):
        with pytest.raises(CryptoError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_distinct_info_distinct_keys(self):
        assert hkdf(b"s", info=b"client") != hkdf(b"s", info=b"server")


@settings(max_examples=25, deadline=None)
@given(key=st.binary(max_size=80), msg=st.binary(max_size=200))
def test_property_hmac_matches_stdlib(key, msg):
    import hmac as stdlib_hmac

    assert hmac_sha256(key, msg) == stdlib_hmac.new(key, msg, hashlib.sha256).digest()
