"""Cache equivalence: the fast paths are invisible to the cost model.

The contract behind every cache in :mod:`repro.crypto.cache` is that
it may change *wall time only*.  For any input, running a primitive

* cold (caches disabled — the pure-Python oracle),
* on a cache **miss** (caches enabled, freshly cleared), and
* on a cache **hit** (caches enabled, warmed by a prior call)

must produce byte-identical output and *integer-equal* cost counters.
These hypothesis properties pin that contract for every cached kernel:
AES block ops, CTR keystreams, ECB/CBC, HMAC, CMAC and HKDF.

The record-channel regression at the bottom pins the satellite fix:
one key-schedule expansion per distinct session key, while
``cipher_init_normal`` is still charged once per cipher instance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import context as cost_context
from repro.cost.accountant import CostAccountant
from repro.crypto import cache
from repro.crypto.aes import AES, key_schedule_stats
from repro.crypto.kdf import hkdf
from repro.crypto.mac import aes_cmac, cmac_verify, hmac_sha256, hmac_verify
from repro.crypto.modes import CtrStream, cbc_encrypt, ecb_decrypt, ecb_encrypt

KEYS = st.binary(min_size=16, max_size=16) | st.binary(min_size=32, max_size=32)
SETTINGS = settings(max_examples=25, deadline=None)


def _measure(op):
    """Run ``op`` under a fresh accountant; return (output, counters)."""
    acct = CostAccountant()
    with cost_context.use_accountant(acct):
        out = op()
    counters = {
        domain: counter.as_dict() for domain, counter in acct.snapshot().items()
    }
    return out, counters


def assert_equivalent(op):
    """Cold, cache-miss and cache-hit runs of ``op`` must agree exactly."""
    cache.clear_all()
    with cache.disabled():
        cold_out, cold_counters = _measure(op)
    cache.clear_all()
    miss_out, miss_counters = _measure(op)  # populates the caches
    hit_out, hit_counters = _measure(op)  # served from them
    assert miss_out == cold_out
    assert hit_out == cold_out
    assert miss_counters == cold_counters
    assert hit_counters == cold_counters


class TestCacheEquivalence:
    @SETTINGS
    @given(key=KEYS, block=st.binary(min_size=16, max_size=16))
    def test_aes_block(self, key, block):
        assert_equivalent(lambda: AES(key).encrypt_block(block))
        assert_equivalent(
            lambda: AES(key).decrypt_block(AES(key).encrypt_block(block))
        )

    @SETTINGS
    @given(
        key=KEYS,
        lengths=st.lists(st.integers(min_value=0, max_value=100), max_size=5),
    )
    def test_ctr_keystream(self, key, lengths):
        def op():
            stream = CtrStream(key, b"nonce")
            return b"".join(stream.keystream(n) for n in lengths)

        assert_equivalent(op)

    @SETTINGS
    @given(key=KEYS, plaintext=st.binary(max_size=96))
    def test_ecb_cbc(self, key, plaintext):
        padded = plaintext + b"\x00" * (-len(plaintext) % 16)
        assert_equivalent(
            lambda: ecb_decrypt(AES(key), ecb_encrypt(AES(key), padded))
        )
        assert_equivalent(lambda: cbc_encrypt(AES(key), b"\x01" * 16, padded))

    @SETTINGS
    @given(key=st.binary(max_size=80), message=st.binary(max_size=200))
    def test_hmac(self, key, message):
        def op():
            tag = hmac_sha256(key, message)
            assert hmac_verify(key, message, tag)
            return tag

        assert_equivalent(op)

    @SETTINGS
    @given(key=st.binary(min_size=16, max_size=16), message=st.binary(max_size=100))
    def test_cmac(self, key, message):
        def op():
            tag = aes_cmac(key, message)
            assert cmac_verify(key, message, tag)
            return tag

        assert_equivalent(op)

    @SETTINGS
    @given(
        ikm=st.binary(min_size=1, max_size=64),
        salt=st.binary(max_size=32),
        info=st.binary(max_size=32),
        length=st.integers(min_value=1, max_value=128),
    )
    def test_hkdf(self, ikm, salt, info, length):
        assert_equivalent(lambda: hkdf(ikm, salt=salt, info=info, length=length))


class TestRecordChannelKeySchedule:
    """Satellite fix: one key-schedule expansion per session key."""

    def _channel_pair(self):
        from repro.net.channel import SecureRecordChannel
        from repro.sgx.attestation import SessionKeys

        keys = SessionKeys.derive(b"cache-regression", b"\x24" * 32)
        return (
            SecureRecordChannel(keys, "initiator"),
            SecureRecordChannel(keys, "responder"),
        )

    def test_one_expansion_per_session_key(self):
        cache.clear_all()
        base = key_schedule_stats()
        initiator, responder = self._channel_pair()
        for _ in range(20):
            assert responder.open(initiator.protect(b"payload")) == b"payload"
        after = key_schedule_stats()
        misses = after["misses"] - base["misses"]
        # A channel pair touches exactly two distinct AES session keys
        # (initiator-enc and responder-enc); every further cipher
        # construction and record must hit the schedule cache.
        assert misses == 2
        assert after["hits"] > base["hits"]

    def test_cipher_init_still_charged_per_instance(self):
        cache.clear_all()
        key = b"\x13" * 16
        model = cost_context.current_model()

        def build_twice():
            AES(key)
            AES(key)

        _, counters = _measure(build_twice)
        normal = counters["untrusted"]["normal_instructions"]
        assert normal == 2 * model.cipher_init_normal

    def test_channel_bytes_unchanged_by_cache_state(self):
        cache.clear_all()
        with cache.disabled():
            initiator, _ = self._channel_pair()
            cold = [initiator.protect(b"rec-%d" % i) for i in range(5)]
        cache.clear_all()
        initiator, _ = self._channel_pair()
        warm = [initiator.protect(b"rec-%d" % i) for i in range(5)]
        assert warm == cold


class TestCachePlumbing:
    def test_disabled_context_restores(self):
        assert cache.enabled()
        with cache.disabled():
            assert not cache.enabled()
        assert cache.enabled()

    def test_memoize_replays_charges_on_raise(self):
        calls = []

        @cache.memoize_charged(name="raise-probe")
        def sometimes(fail):
            calls.append(fail)
            cost_context.charge_normal(7)
            if fail:
                raise ValueError("boom")
            return b"ok"

        cache.clear_all()
        _, counters = _measure(lambda: pytest.raises(ValueError, sometimes, True))
        assert counters["untrusted"]["normal_instructions"] == 7
        # Raising calls are never cached: the next call runs again.
        _, counters = _measure(lambda: pytest.raises(ValueError, sometimes, True))
        assert counters["untrusted"]["normal_instructions"] == 7
        assert calls == [True, True]
