"""AES correctness: FIPS-197 / SP 800-38A vectors plus properties."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.crypto.modes import (
    CtrStream,
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
)
from repro.errors import CryptoError


class TestSboxConstruction:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox_is_inverse(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestFips197Vectors:
    """Appendix C of FIPS-197."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_decrypt_inverts_each_key_size(self):
        for key_len in (16, 24, 32):
            key = bytes(range(key_len))
            cipher = AES(key)
            ct = cipher.encrypt_block(self.PLAINTEXT)
            assert cipher.decrypt_block(ct) == self.PLAINTEXT


class TestSp80038aVectors:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    BLOCK1 = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")

    def test_ecb_block(self):
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(self.KEY).encrypt_block(self.BLOCK1) == expected

    def test_cbc_first_block(self):
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("7649abac8119b246cee98e9b12e9197d")
        ct = cbc_encrypt(AES(self.KEY), iv, self.BLOCK1)
        assert ct[:16] == expected

    def test_ctr_first_block(self):
        counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        expected = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
        stream = CtrStream(self.KEY, counter)
        assert stream.process(self.BLOCK1) == expected


class TestAesApi:
    def test_rejects_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES(b"short")

    def test_rejects_bad_block_length(self):
        cipher = AES(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"\x00" * 15)
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"\x00" * 17)


class TestModes:
    KEY = b"0123456789abcdef"

    def test_ecb_roundtrip_unaligned(self):
        cipher = AES(self.KEY)
        for size in (0, 1, 15, 16, 17, 100):
            data = bytes(range(size % 256))[:size].ljust(size, b"x")
            assert ecb_decrypt(cipher, ecb_encrypt(cipher, data)) == data

    def test_ecb_reveals_equal_blocks(self):
        # The classic ECB weakness -- the paper's channel used ECB; we
        # document the property.
        cipher = AES(self.KEY)
        ct = ecb_encrypt(cipher, b"A" * 16 + b"A" * 16)
        assert ct[:16] == ct[16:32]

    def test_cbc_roundtrip(self):
        cipher = AES(self.KEY)
        iv = b"\x01" * 16
        data = b"attack at dawn" * 5
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) == data

    def test_cbc_hides_equal_blocks(self):
        cipher = AES(self.KEY)
        ct = cbc_encrypt(cipher, b"\x07" * 16, b"A" * 32)
        assert ct[:16] != ct[16:32]

    def test_cbc_rejects_bad_iv(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(AES(self.KEY), b"short", b"data")

    def test_cbc_decrypt_rejects_corrupt_padding(self):
        cipher = AES(self.KEY)
        ct = bytearray(cbc_encrypt(cipher, b"\x00" * 16, b"hello"))
        ct[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            cbc_decrypt(cipher, b"\x00" * 16, bytes(ct))

    def test_ctr_is_symmetric(self):
        data = b"stream cipher mode" * 3
        enc = CtrStream(self.KEY, b"\x00" * 8)
        dec = CtrStream(self.KEY, b"\x00" * 8)
        assert dec.process(enc.process(data)) == data

    def test_ctr_state_advances_across_calls(self):
        a = CtrStream(self.KEY)
        b = CtrStream(self.KEY)
        joined = a.process(b"x" * 40)
        split = b.process(b"x" * 13) + b.process(b"x" * 27)
        assert joined == split

    def test_ctr_counter_wraps(self):
        stream = CtrStream(self.KEY, b"\xff" * 16)
        stream.keystream(32)  # crossing the wrap must not raise

    def test_ctr_rejects_long_nonce(self):
        with pytest.raises(CryptoError):
            CtrStream(self.KEY, b"\x00" * 17)


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), data=st.binary(min_size=16, max_size=16))
def test_property_block_roundtrip(key, data):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(data)) == data


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), data=st.binary(max_size=200))
def test_property_ctr_roundtrip(key, data):
    assert CtrStream(key).process(CtrStream(key).process(data)) == data


@settings(max_examples=20, deadline=None)
@given(data=st.binary(max_size=100))
def test_property_ecb_roundtrip(data):
    cipher = AES(b"k" * 16)
    assert ecb_decrypt(cipher, ecb_encrypt(cipher, data)) == data
