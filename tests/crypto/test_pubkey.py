"""DH, RSA, Schnorr and EPID tests."""

import pytest

from repro.cost import CostAccountant, DEFAULT_MODEL
from repro.cost import context as cost_context
from repro.crypto import dh
from repro.crypto.drbg import Rng
from repro.crypto.epid import EpidGroupManager, epid_verify
from repro.crypto.rsa import generate_rsa_keypair, rsa_sign, rsa_verify
from repro.crypto.schnorr import (
    SchnorrSignature,
    generate_schnorr_keypair,
    schnorr_sign,
    schnorr_verify,
)
from repro.errors import CryptoError


class TestDh:
    def test_modp_groups_have_expected_sizes(self):
        assert dh.MODP_1024.p.bit_length() == 1024
        assert dh.MODP_2048.p.bit_length() == 2048

    def test_key_exchange_agrees(self):
        rng = Rng(1)
        alice = dh.generate_keypair(dh.MODP_1024, rng)
        bob = dh.generate_keypair(dh.MODP_1024, rng)
        assert dh.shared_secret(alice, bob.public) == dh.shared_secret(
            bob, alice.public
        )

    def test_shared_secret_is_fixed_width(self):
        rng = Rng(2)
        alice = dh.generate_keypair(dh.MODP_1024, rng)
        bob = dh.generate_keypair(dh.MODP_1024, rng)
        assert len(dh.shared_secret(alice, bob.public)) == 128

    def test_rejects_degenerate_peer_values(self):
        rng = Rng(3)
        kp = dh.generate_keypair(dh.MODP_1024, rng)
        for bad in (0, 1, dh.MODP_1024.p - 1, dh.MODP_1024.p):
            with pytest.raises(CryptoError):
                dh.shared_secret(kp, bad)

    def test_generate_parameters_standard_returns_rfc_group(self):
        group = dh.generate_parameters(1024, Rng(4))
        assert group is dh.MODP_1024

    def test_generate_parameters_standard_charges_cost(self):
        acct = CostAccountant()
        with cost_context.use_accountant(acct):
            dh.generate_parameters(1024, Rng(4))
        assert (
            acct.total().normal_instructions
            >= DEFAULT_MODEL.dh_param_gen_normal
        )

    def test_generate_parameters_small_really_generates(self):
        group = dh.generate_parameters(64, Rng(5))
        assert group.p.bit_length() == 64
        # p must be a safe prime: (p-1)/2 prime.
        from repro.crypto.numtheory import is_probable_prime

        rng = Rng(6)
        assert is_probable_prime(group.p, rng)
        assert is_probable_prime((group.p - 1) // 2, rng)

    def test_generate_parameters_rejects_odd_large_size(self):
        with pytest.raises(CryptoError):
            dh.generate_parameters(768, Rng(0))

    def test_exchange_on_generated_group(self):
        group = dh.generate_parameters(80, Rng(7))
        rng = Rng(8)
        a = dh.generate_keypair(group, rng)
        b = dh.generate_keypair(group, rng)
        assert dh.shared_secret(a, b.public) == dh.shared_secret(b, a.public)

    def test_modexp_cost_charged(self):
        acct = CostAccountant()
        rng = Rng(9)
        with cost_context.use_accountant(acct):
            dh.generate_keypair(dh.MODP_1024, rng)
        assert (
            acct.total().normal_instructions == DEFAULT_MODEL.modexp_1024_normal
        )


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return generate_rsa_keypair(512, Rng(b"rsa-test"))

    def test_keypair_consistency(self, key):
        assert key.p * key.q == key.n
        assert key.n.bit_length() == 512

    def test_sign_verify_roundtrip(self, key):
        sig = rsa_sign(key, b"hello enclave")
        assert rsa_verify(key.public_key(), b"hello enclave", sig)

    def test_tampered_message_rejected(self, key):
        sig = rsa_sign(key, b"hello enclave")
        assert not rsa_verify(key.public_key(), b"hello Enclave", sig)

    def test_tampered_signature_rejected(self, key):
        sig = bytearray(rsa_sign(key, b"msg"))
        sig[5] ^= 0x01
        assert not rsa_verify(key.public_key(), b"msg", bytes(sig))

    def test_wrong_length_signature_rejected(self, key):
        assert not rsa_verify(key.public_key(), b"msg", b"\x00" * 10)

    def test_fingerprint_stable_and_distinct(self, key):
        other = generate_rsa_keypair(512, Rng(b"other"))
        pub = key.public_key()
        assert pub.fingerprint() == key.public_key().fingerprint()
        assert pub.fingerprint() != other.public_key().fingerprint()

    def test_rejects_tiny_modulus_for_signature(self):
        tiny = generate_rsa_keypair(128, Rng(b"tiny"))
        with pytest.raises(CryptoError):
            rsa_sign(tiny, b"msg")

    def test_keygen_rejects_bad_sizes(self):
        with pytest.raises(CryptoError):
            generate_rsa_keypair(63, Rng(0))
        with pytest.raises(CryptoError):
            generate_rsa_keypair(129, Rng(0))


class TestSchnorr:
    @pytest.fixture(scope="class")
    def key(self):
        return generate_schnorr_keypair(Rng(b"schnorr-test"))

    def test_sign_verify(self, key):
        sig = schnorr_sign(key, b"quote body")
        assert schnorr_verify(key.group, key.y, b"quote body", sig)

    def test_reject_wrong_message(self, key):
        sig = schnorr_sign(key, b"quote body")
        assert not schnorr_verify(key.group, key.y, b"other body", sig)

    def test_reject_wrong_public(self, key):
        other = generate_schnorr_keypair(Rng(b"other"))
        sig = schnorr_sign(key, b"m")
        assert not schnorr_verify(key.group, other.y, b"m", sig)

    def test_reject_out_of_range_components(self, key):
        q = (key.group.p - 1) // 2
        assert not schnorr_verify(key.group, key.y, b"m", SchnorrSignature(e=0, s=0))
        assert not schnorr_verify(key.group, key.y, b"m", SchnorrSignature(e=1, s=q))

    def test_deterministic_signatures(self, key):
        assert schnorr_sign(key, b"m") == schnorr_sign(key, b"m")

    def test_encode_decode_roundtrip(self, key):
        sig = schnorr_sign(key, b"m")
        assert SchnorrSignature.decode(sig.encode()) == sig

    def test_decode_truncated_raises(self):
        with pytest.raises(CryptoError):
            SchnorrSignature.decode(b"\x00" * 10)


class TestEpid:
    @pytest.fixture(scope="class")
    def manager(self):
        return EpidGroupManager(Rng(b"epid-test"))

    def test_member_signature_verifies(self, manager):
        member = manager.issue_member_key("cpu-1")
        sig = member.sign(b"QUOTE")
        assert epid_verify(manager.group_public_key, b"QUOTE", sig)

    def test_distinct_members_distinct_keys(self, manager):
        a = manager.issue_member_key("cpu-a")
        b = manager.issue_member_key("cpu-b")
        assert a.keypair.y != b.keypair.y

    def test_forged_credential_rejected(self, manager):
        member = manager.issue_member_key("cpu-2")
        rogue = generate_schnorr_keypair(Rng(b"rogue"))
        sig = member.sign(b"QUOTE")
        forged = type(sig)(
            member_public=rogue.y,
            credential=sig.credential,
            signature=schnorr_sign(rogue, b"QUOTE"),
        )
        assert not epid_verify(manager.group_public_key, b"QUOTE", forged)

    def test_revoked_member_rejected(self, manager):
        member = manager.issue_member_key("cpu-3")
        manager.revoke(member.keypair.y)
        sig = member.sign(b"QUOTE")
        assert not epid_verify(
            manager.group_public_key,
            b"QUOTE",
            sig,
            revocation_list=manager.revocation_list,
        )

    def test_wrong_group_public_key_rejected(self, manager):
        other = EpidGroupManager(Rng(b"other-group"))
        member = manager.issue_member_key("cpu-4")
        sig = member.sign(b"QUOTE")
        assert not epid_verify(other.group_public_key, b"QUOTE", sig)

    def test_wrong_message_rejected(self, manager):
        member = manager.issue_member_key("cpu-5")
        sig = member.sign(b"QUOTE")
        assert not epid_verify(manager.group_public_key, b"FORGED", sig)
