"""Shared test/benchmark construction helpers.

Both the test suite (via ``tests/conftest.py`` fixtures) and the
benchmark harness (``benchmarks/conftest.py``) build the same basic
SGX world over and over: a seeded attestation authority, a platform
with its quoting enclave, an RSA author key, a fresh cost accountant.
The factories here are the single place those recipes live; every
seed is explicit so call sites stay deterministic.
"""

from __future__ import annotations

from repro.cost import CostAccountant
from repro.crypto.drbg import Rng
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.sgx.platform import SgxPlatform
from repro.sgx.quoting import AttestationAuthority

__all__ = [
    "make_author_key",
    "make_authority",
    "make_platform",
    "make_accountant",
    "emit",
]


def make_author_key(seed: bytes = b"test-author", bits: int = 512) -> RsaPrivateKey:
    """A deterministic enclave-author signing key (small, fast RSA)."""
    return generate_rsa_keypair(bits, Rng(seed))


def make_authority(seed: bytes = b"test-authority") -> AttestationAuthority:
    """A fresh attestation authority with its own seeded RNG."""
    return AttestationAuthority(Rng(seed))


def make_platform(
    name: str = "host-a",
    authority: AttestationAuthority | None = None,
    seed: bytes | None = None,
) -> SgxPlatform:
    """A platform (with quoting enclave) named ``name``.

    With no ``authority`` a private one is created, seeded from the
    platform name so distinct names never share RNG streams.
    """
    if authority is None:
        authority = make_authority(b"authority:" + name.encode())
    return SgxPlatform(name, authority, rng=Rng(seed or name.encode()))


def make_accountant() -> CostAccountant:
    """A fresh, empty cost accountant."""
    return CostAccountant()


def emit(text: str) -> None:
    """Print a result block (visible with -s; always flushed)."""
    print("\n" + text, flush=True)
