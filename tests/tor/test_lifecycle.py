"""Circuit teardown and consensus freshness."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import TorError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.net.transport import StreamListener
from repro.tor.client import TorClient
from repro.tor.directory import ConsensusDocument, RouterDescriptor
from repro.tor.handshake import OnionKeyPair
from repro.tor.node import OnionRouterNode
from repro.tor.relay import RelayCore


def build_overlay():
    sim = Simulator()
    net = Network(sim, rng=Rng(b"lifecycle"), default_link=LinkParams(latency=0.002))
    cores = {}
    descriptors = []
    for i, name in enumerate(("g", "m", "e")):
        host = net.add_host(name)
        rng = Rng(b"lc", name)
        onion = OnionKeyPair.generate(rng.fork("k"))
        core = RelayCore(name, onion, rng.fork("c"))
        cores[name] = core
        OnionRouterNode(host, core)
        descriptors.append(
            RouterDescriptor(
                nickname=name,
                or_port=9001,
                onion_public=onion.public,
                exit_ports=frozenset({80}) if name == "e" else frozenset(),
            )
        )
    web = net.add_host("web")
    listener = StreamListener(web, 80)
    web_events = []

    def web_srv():
        while True:
            conn = yield listener.accept()
            sim.spawn(handle(conn))

    def handle(conn):
        while True:
            req = yield conn.recv_message()
            if req is None:
                web_events.append("eof")
                return
            conn.send_message(b"ok:" + req)

    sim.spawn(web_srv())
    client = TorClient(net.add_host("client"), Rng(b"lc-client"))
    return sim, descriptors, cores, client, web_events


class TestCircuitTeardown:
    def test_destroy_propagates_to_every_hop(self):
        sim, descriptors, cores, client, web_events = build_overlay()
        state = {}

        def proc():
            circuit = yield from client.build_circuit(descriptors)
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, b"ping")
            state["reply"] = yield circuit.recv(stream)
            circuit.destroy()

        sim.spawn(proc())
        sim.run(until=60.0)
        assert state["reply"] == b"ok:ping"
        for name, core in cores.items():
            assert core.circuit_count == 0, f"{name} kept circuit state"

    def test_destroy_closes_exit_streams(self):
        sim, descriptors, cores, client, web_events = build_overlay()

        def proc():
            circuit = yield from client.build_circuit(descriptors)
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, b"one")
            yield circuit.recv(stream)
            circuit.destroy()

        sim.spawn(proc())
        sim.run(until=60.0)
        assert web_events == ["eof"]  # destination saw the close

    def test_other_circuits_survive_destroy(self):
        sim, descriptors, cores, client, _ = build_overlay()
        state = {}

        def proc():
            first = yield from client.build_circuit(descriptors)
            second = yield from client.build_circuit(descriptors)
            first.destroy()
            yield sim.sleep(1.0)
            stream = yield from second.open_stream("web", 80)
            second.send(stream, b"still alive")
            state["reply"] = yield second.recv(stream)

        sim.spawn(proc())
        sim.run(until=60.0)
        assert state["reply"] == b"ok:still alive"
        assert all(core.circuit_count == 1 for core in cores.values())


class TestConsensusFreshness:
    def test_freshness_window(self):
        doc = ConsensusDocument(valid_after=100.0, entries=[], lifetime=60.0)
        assert not doc.is_fresh(99.0)    # not yet valid
        assert doc.is_fresh(100.0)
        assert doc.is_fresh(159.9)
        assert not doc.is_fresh(160.0)   # expired

    def test_lifetime_is_signed(self):
        """Tampering with the lifetime breaks the signatures (an
        attacker cannot stretch an old consensus)."""
        from repro.tor.directory import DirectoryAuthorityCore, build_consensus

        authority = DirectoryAuthorityCore("a1", Rng(b"fresh"))
        onion = OnionKeyPair.generate(Rng(b"r"))
        authority.register(
            RouterDescriptor(nickname="r", or_port=9001, onion_public=onion.public),
            manual_approved=True,
        )
        doc = build_consensus([authority.vote()], 1, valid_after=0.0, lifetime=60.0)
        doc.add_signature("a1", authority.sign_consensus(doc))
        doc.verify({"a1": authority.public_key}, quorum=1)

        doc.lifetime = 10_000.0  # attacker stretches it
        with pytest.raises(TorError, match="quorum"):
            doc.verify({"a1": authority.public_key}, quorum=1)

    def test_stale_consensus_rejected_by_deployment(self):
        from repro.tor.deployment import TorDeployment, TorDeploymentConfig

        deployment = TorDeployment(
            TorDeploymentConfig(phase=0, n_relays=4, n_exits=2, seed=b"stale")
        )
        # Pretend the deployment's consensus was cut long "ago": push
        # simulated time far past its lifetime instead of rewinding.
        deployment._native_consensus.lifetime = 5.0
        deployment.sim.call_later(10_000.0, lambda: None)
        deployment.sim.run()
        # Re-sign so only staleness (not signature) is at stake.
        for name, core in deployment.authorities.items():
            deployment._native_consensus.add_signature(
                name, core.sign_consensus(deployment._native_consensus)
            )
        with pytest.raises(TorError, match="stale"):
            deployment.fetch_consensus()
