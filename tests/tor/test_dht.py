"""Chord DHT: structure, lookups, storage, gated admission."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TorError
from repro.tor.dht import M, RING, ChordRing, key_for


def make_ring(names, check=None):
    ring = ChordRing(admission_check=check)
    for name in names:
        ring.join(name)
    return ring


NAMES = [f"node{i}" for i in range(12)]


class TestStructure:
    def test_successor_cycle_covers_all(self):
        ring = make_ring(NAMES)
        start = ring.node(NAMES[0])
        seen = set()
        current = start
        for _ in range(len(NAMES)):
            seen.add(current.name)
            current = current.successor
        assert seen == set(NAMES)
        assert current is start

    def test_predecessor_inverts_successor(self):
        ring = make_ring(NAMES)
        for name in NAMES:
            node = ring.node(name)
            assert node.successor.predecessor is node

    def test_finger_table_size(self):
        ring = make_ring(NAMES)
        assert all(len(ring.node(n).fingers) == M for n in NAMES)

    def test_duplicate_join_rejected(self):
        ring = make_ring(NAMES[:3])
        with pytest.raises(TorError):
            ring.join(NAMES[0])

    def test_key_for_is_stable(self):
        assert key_for("x") == key_for("x")
        assert 0 <= key_for("x") < RING


class TestLookup:
    def test_lookup_agrees_with_owner_of(self):
        ring = make_ring(NAMES)
        for probe in range(0, RING, RING // 50):
            owner, _ = ring.find_successor(NAMES[0], probe)
            assert owner is ring.owner_of(probe)

    def test_lookup_from_any_start(self):
        ring = make_ring(NAMES)
        key = key_for("some-key")
        owners = {ring.find_successor(start, key)[0].name for start in NAMES}
        assert len(owners) == 1

    def test_hop_count_bounded_logarithmically(self):
        ring = make_ring([f"n{i}" for i in range(32)])
        for probe in range(0, RING, RING // 64):
            _, hops = ring.find_successor("n0", probe)
            assert hops <= M

    def test_single_node_ring(self):
        ring = make_ring(["only"])
        owner, hops = ring.find_successor("only", 12345)
        assert owner.name == "only"

    def test_empty_ring_raises(self):
        ring = ChordRing()
        with pytest.raises(TorError):
            ring.owner_of(1)


class TestStorage:
    def test_put_get_roundtrip(self):
        ring = make_ring(NAMES)
        ring.put(NAMES[0], "relay:alpha", {"bw": 100})
        value, _ = ring.get(NAMES[3], "relay:alpha")
        assert value == {"bw": 100}

    def test_get_missing(self):
        ring = make_ring(NAMES)
        value, _ = ring.get(NAMES[0], "relay:ghost")
        assert value is None

    def test_keys_move_on_leave(self):
        ring = make_ring(NAMES)
        ring.put(NAMES[0], "relay:alpha", "v")
        owner = ring.owner_of(key_for("relay:alpha"))
        ring.leave(owner.name)
        value, _ = ring.get(ring.members()[0], "relay:alpha")
        assert value == "v"

    def test_leave_unknown_is_noop(self):
        ring = make_ring(NAMES[:3])
        ring.leave("ghost")
        assert len(ring.members()) == 3


class TestAdmission:
    def test_admission_check_gates_joins(self):
        allowed = {"good1", "good2"}
        ring = ChordRing(admission_check=lambda n: n in allowed)
        ring.join("good1")
        ring.join("good2")
        with pytest.raises(TorError, match="admission"):
            ring.join("evil")
        assert ring.rejected_joins == ["evil"]
        assert ring.members() == ["good1", "good2"]


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    probes=st.lists(st.integers(min_value=0, max_value=RING - 1), min_size=1, max_size=10),
)
def test_property_lookup_correctness(n, probes):
    ring = make_ring([f"m{i}" for i in range(n)])
    for probe in probes:
        owner, hops = ring.find_successor("m0", probe)
        assert owner is ring.owner_of(probe)
        assert hops <= M
