"""Integration: the four SGX deployment phases and their attack surface."""

import pytest

from repro.errors import EnclaveAccessError, TorError
from repro.tor.attacks import INJECTED
from repro.tor.deployment import TorDeployment, TorDeploymentConfig


@pytest.fixture(scope="module")
def phase0():
    return TorDeployment(
        TorDeploymentConfig(
            phase=0, n_relays=6, n_exits=2, malicious={"or1": "tamper"}
        )
    )


@pytest.fixture(scope="module")
def phase1():
    return TorDeployment(
        TorDeploymentConfig(
            phase=1, n_relays=6, n_exits=2, malicious={"or1": "tamper"}
        )
    )


@pytest.fixture(scope="module")
def phase2():
    return TorDeployment(
        TorDeploymentConfig(
            phase=2, n_relays=5, n_exits=2, malicious={"or1": "tamper"}
        )
    )


@pytest.fixture(scope="module")
def phase3():
    return TorDeployment(
        TorDeploymentConfig(
            phase=3, n_relays=6, n_exits=2, malicious={"or1": "tamper"}
        )
    )


class TestPhase0Legacy:
    def test_malicious_volunteer_is_admitted(self, phase0):
        assert all(phase0.relays["or1"].admitted_by.values())

    def test_tampering_exit_attack_succeeds(self, phase0):
        result = phase0.run_client_request(forced_path=["or4", "or5", "or1"])
        assert result["intact"] is False
        assert INJECTED[: len(INJECTED)] in result["reply"] or not result["intact"]

    def test_honest_exit_serves_intact_content(self, phase0):
        result = phase0.run_client_request(forced_path=["or4", "or5", "or2"])
        assert result["intact"] is True

    def test_native_authority_key_can_be_stolen(self, phase0):
        # The attacker owns the host: reading the signing key out of a
        # native authority's memory is trivial.
        key = phase0.authorities["auth1"].signing_key
        assert key.x > 0


class TestPhase1SgxDirectories:
    def test_consensus_fetch_attests_each_authority(self, phase1):
        consensus = phase1.fetch_consensus()
        assert phase1.client_attestations == phase1.config.n_authorities
        assert len(consensus.routers()) == 6

    def test_directory_key_unreachable_from_host(self, phase1):
        enclave = phase1.authorities["auth1"]
        with pytest.raises(EnclaveAccessError):
            _ = enclave.program  # the only path to the key object

    def test_relays_still_native_so_exit_attack_persists(self, phase1):
        result = phase1.run_client_request(forced_path=["or4", "or5", "or1"])
        assert result["intact"] is False

    def test_authority_dos_still_possible_but_quorum_survives(self, phase1):
        # Kill one authority enclave: clients needing a quorum of the
        # remaining signatures still verify (DoS is out of scope).
        node = phase1.authority_nodes["auth3"]
        enclave = phase1.authorities["auth3"]
        node.platform.destroy_enclave(enclave)
        assert enclave.destroyed


class TestPhase2SgxRelays:
    def test_honest_relays_auto_admitted(self, phase2):
        for nickname in ("or2", "or3", "or4", "or5"):
            assert all(phase2.relays[nickname].admitted_by.values()), nickname

    def test_tampered_relay_rejected_at_attestation(self, phase2):
        assert not any(phase2.relays["or1"].admitted_by.values())
        assert "or1" in phase2.rejected_registrations

    def test_tampered_relay_absent_from_consensus(self, phase2):
        consensus = phase2.fetch_consensus()
        names = [entry.nickname for entry in consensus.routers()]
        assert "or1" not in names
        assert set(names) == {"or2", "or3", "or4", "or5"}

    def test_forcing_the_malicious_exit_is_impossible(self, phase2):
        with pytest.raises(TorError, match="not in consensus"):
            phase2.run_client_request(forced_path=["or3", "or4", "or1"])

    def test_client_traffic_is_intact(self, phase2):
        result = phase2.run_client_request()
        assert result["intact"] is True

    def test_mutual_attestation_count(self, phase2):
        # Each of 5 relays registers with 3 authorities; mutual
        # attestation -> 2 quotes per registration attempt.
        assert phase2.registration_attestations == 2 * 5 * 3


class TestPhase3FullySgx:
    def test_no_directory_authorities(self, phase3):
        assert phase3.authorities == {}
        with pytest.raises(TorError):
            phase3.fetch_consensus()

    def test_tampered_relay_cannot_join_dht(self, phase3):
        assert "or1" not in phase3.dht.members()
        assert "or1" in phase3.rejected_registrations

    def test_one_attestation_per_join(self, phase3):
        # 6 joiners each produce one quote during admission.
        assert phase3.registration_attestations == 6

    def test_descriptors_resolvable_via_dht(self, phase3):
        entries = phase3.dht_descriptors()
        assert {e.nickname for e in entries} == {"or2", "or3", "or4", "or5", "or6"}

    def test_client_request_through_dht_network(self, phase3):
        result = phase3.run_client_request()
        assert result["intact"] is True
        assert "or1" not in result["path"]
