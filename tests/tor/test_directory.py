"""Directory authorities: descriptors, votes, consensus, quorum."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import TorError
from repro.tor.directory import (
    ConsensusDocument,
    DirectoryAuthorityCore,
    RouterDescriptor,
    RouterFlag,
    build_consensus,
)
from repro.tor.handshake import OnionKeyPair


def make_descriptor(nickname, exit=False, bandwidth=100):
    onion = OnionKeyPair.generate(Rng(nickname.encode()))
    return RouterDescriptor(
        nickname=nickname,
        or_port=9001,
        onion_public=onion.public,
        exit_ports=frozenset({80, 443}) if exit else frozenset(),
        bandwidth=bandwidth,
    )


def make_authorities(n=3, **kwargs):
    return [
        DirectoryAuthorityCore(f"auth{i}", Rng(f"auth{i}".encode()), **kwargs)
        for i in range(n)
    ]


class TestDescriptor:
    def test_encode_decode(self):
        descriptor = make_descriptor("relay1", exit=True, bandwidth=64)
        assert RouterDescriptor.decode(descriptor.encode()) == descriptor

    def test_identity_is_stable_and_binding(self):
        a = make_descriptor("relay1")
        b = make_descriptor("relay1")
        assert a.identity == b.identity
        assert a.identity != make_descriptor("relay2").identity

    def test_exit_policy(self):
        descriptor = make_descriptor("e", exit=True)
        assert descriptor.allows_exit_to(80)
        assert not descriptor.allows_exit_to(22)


class TestAdmission:
    def test_manual_approval_required_in_legacy_mode(self):
        authority = make_authorities(1)[0]
        descriptor = make_descriptor("newbie")
        assert not authority.register(descriptor)
        assert authority.register(descriptor, manual_approved=True)
        assert "newbie" in authority.registered()

    def test_attestation_mode_admits_only_accepted_measurements(self):
        good, bad = b"\xaa" * 32, b"\xbb" * 32
        authority = make_authorities(
            1, require_attestation=True, accepted_mrenclaves=frozenset({good})
        )[0]
        descriptor = make_descriptor("sgx-relay")
        assert not authority.register(descriptor)  # no attestation at all
        assert not authority.register(descriptor, attested_mrenclave=bad)
        assert authority.register(descriptor, attested_mrenclave=good)

    def test_attestation_mode_ignores_manual_approval(self):
        authority = make_authorities(
            1, require_attestation=True, accepted_mrenclaves=frozenset({b"\xaa" * 32})
        )[0]
        assert not authority.register(make_descriptor("r"), manual_approved=True)


class TestVoting:
    def test_vote_flags(self):
        authority = make_authorities(1)[0]
        authority.register(make_descriptor("exit1", exit=True), manual_approved=True)
        authority.register(
            make_descriptor("weak", bandwidth=10), manual_approved=True
        )
        vote = authority.vote()
        assert RouterFlag.EXIT in vote.entries["exit1"]
        assert RouterFlag.GUARD in vote.entries["exit1"]
        assert RouterFlag.GUARD not in vote.entries["weak"]

    def test_down_relay_loses_running(self):
        authority = make_authorities(1)[0]
        authority.register(make_descriptor("r"), manual_approved=True)
        authority.mark_down("r")
        assert RouterFlag.RUNNING not in authority.vote().entries["r"]

    def test_vote_signature_verifies(self):
        authority = make_authorities(1)[0]
        authority.register(make_descriptor("r"), manual_approved=True)
        vote = authority.vote()
        assert vote.verify(authority.public_key)
        other = make_authorities(2)[1]
        assert not vote.verify(other.public_key)


class TestConsensus:
    def register_everywhere(self, authorities, descriptors):
        for authority in authorities:
            for descriptor in descriptors:
                authority.register(descriptor, manual_approved=True)

    def test_majority_inclusion(self):
        authorities = make_authorities(3)
        shared = make_descriptor("shared")
        rare = make_descriptor("rare")
        self.register_everywhere(authorities, [shared])
        authorities[0].register(rare, manual_approved=True)  # only 1/3
        votes = [a.vote() for a in authorities]
        consensus = build_consensus(votes, 3, valid_after=0.0)
        names = [e.nickname for e in consensus.entries]
        assert "shared" in names
        assert "rare" not in names

    def test_flag_majority(self):
        authorities = make_authorities(3)
        descriptor = make_descriptor("sus", exit=True)
        self.register_everywhere(authorities, [descriptor])
        authorities[0].flag_bad_exit("sus")  # one vote is not a majority
        votes = [a.vote() for a in authorities]
        consensus = build_consensus(votes, 3, valid_after=0.0)
        entry = consensus.find("sus")
        assert RouterFlag.BAD_EXIT not in entry.flags

        authorities[1].flag_bad_exit("sus")  # now 2/3
        votes = [a.vote() for a in authorities]
        consensus = build_consensus(votes, 3, valid_after=0.0)
        assert RouterFlag.BAD_EXIT in consensus.find("sus").flags

    def test_bad_exit_not_usable_as_exit(self):
        authorities = make_authorities(3)
        descriptor = make_descriptor("sus", exit=True)
        self.register_everywhere(authorities, [descriptor])
        for authority in authorities[:2]:
            authority.flag_bad_exit("sus")
        consensus = build_consensus([a.vote() for a in authorities], 3, 0.0)
        assert not consensus.find("sus").allows_exit_to(80)

    def test_signature_quorum(self):
        authorities = make_authorities(3)
        self.register_everywhere(authorities, [make_descriptor("r")])
        consensus = build_consensus([a.vote() for a in authorities], 3, 0.0)
        keys = {a.name: a.public_key for a in authorities}

        consensus.add_signature(
            authorities[0].name, authorities[0].sign_consensus(consensus)
        )
        with pytest.raises(TorError, match="quorum"):
            consensus.verify(keys)
        consensus.add_signature(
            authorities[1].name, authorities[1].sign_consensus(consensus)
        )
        assert consensus.verify(keys) == 2

    def test_forged_signature_does_not_count(self):
        authorities = make_authorities(3)
        self.register_everywhere(authorities, [make_descriptor("r")])
        consensus = build_consensus([a.vote() for a in authorities], 3, 0.0)
        keys = {a.name: a.public_key for a in authorities}
        impostor = make_authorities(4)[3]
        consensus.add_signature(authorities[0].name, impostor.sign_consensus(consensus))
        consensus.add_signature(authorities[1].name, impostor.sign_consensus(consensus))
        with pytest.raises(TorError, match="quorum"):
            consensus.verify(keys)

    def test_vote_verification_discards_forged_votes(self):
        """With authority keys supplied, a vote whose signature does
        not verify (tampered in transit by a malicious host) is
        ignored when building consensus."""
        import dataclasses

        authorities = make_authorities(3)
        descriptor = make_descriptor("victim", exit=True)
        self.register_everywhere(authorities, [descriptor])
        votes = [a.vote() for a in authorities]
        # The attacker flips BadExit inside two votes in transit.
        forged = []
        for vote in votes[:2]:
            entries = dict(vote.entries)
            entries["victim"] = vote.entries["victim"] | {RouterFlag.BAD_EXIT}
            forged.append(dataclasses.replace(vote, entries=entries))
        keys = {a.name: a.public_key for a in authorities}

        verified = build_consensus(forged + votes[2:], 3, 0.0, authority_keys=keys)
        # Forged votes dropped -> only one honest vote lists the relay,
        # below the quorum of 2: safest outcome, no poisoned entry.
        assert verified.find("victim") is None

        unverified = build_consensus(forged + votes[2:], 3, 0.0)
        assert RouterFlag.BAD_EXIT in unverified.find("victim").flags

    def test_running_and_valid_required_for_usability(self):
        authorities = make_authorities(3)
        descriptor = make_descriptor("down-relay")
        self.register_everywhere(authorities, [descriptor])
        for authority in authorities:
            authority.mark_down("down-relay")
        consensus = build_consensus([a.vote() for a in authorities], 3, 0.0)
        assert consensus.find("down-relay") is not None
        assert consensus.routers() == []
