"""Cells, relay payloads, rolling digests and layered onion crypto."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TorError
from repro.tor.cell import (
    CELL_SIZE,
    PAYLOAD_SIZE,
    RELAY_DATA_SIZE,
    Cell,
    CellCommand,
    RelayCommand,
    RelayPayload,
)
from repro.tor.onion import HopCrypto, RollingDigest


class TestCell:
    def test_encode_is_exactly_512_bytes(self):
        cell = Cell(7, CellCommand.RELAY, b"data")
        assert len(cell.encode()) == CELL_SIZE

    def test_roundtrip(self):
        cell = Cell(123456, CellCommand.CREATE, b"onion skin")
        decoded = Cell.decode(cell.encode())
        assert decoded.circ_id == 123456
        assert decoded.command is CellCommand.CREATE
        assert decoded.payload[:10] == b"onion skin"
        assert len(decoded.payload) == PAYLOAD_SIZE

    def test_oversize_payload_rejected(self):
        with pytest.raises(TorError):
            Cell(1, CellCommand.RELAY, b"x" * (PAYLOAD_SIZE + 1)).encode()

    def test_wrong_size_decode_rejected(self):
        with pytest.raises(TorError):
            Cell.decode(b"\x00" * 100)


class TestRelayPayload:
    def test_roundtrip(self):
        payload = RelayPayload(RelayCommand.DATA, 9, b"\x01\x02\x03\x04", b"hello")
        decoded = RelayPayload.decode(payload.encode())
        assert decoded.command is RelayCommand.DATA
        assert decoded.stream_id == 9
        assert decoded.digest == b"\x01\x02\x03\x04"
        assert decoded.data == b"hello"

    def test_encode_fills_cell_payload(self):
        payload = RelayPayload(RelayCommand.BEGIN, 1, b"\x00" * 4, b"web:80")
        assert len(payload.encode()) == PAYLOAD_SIZE

    def test_max_data_size(self):
        payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"x" * RELAY_DATA_SIZE)
        assert RelayPayload.decode(payload.encode()).data == b"x" * RELAY_DATA_SIZE

    def test_oversize_data_rejected(self):
        with pytest.raises(TorError):
            RelayPayload(
                RelayCommand.DATA, 1, b"\x00" * 4, b"x" * (RELAY_DATA_SIZE + 1)
            ).encode()

    def test_unrecognized_marker_rejected(self):
        payload = bytearray(RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"x").encode())
        payload[1] = 0xFF
        with pytest.raises(TorError):
            RelayPayload.decode(bytes(payload))
        assert not RelayPayload.looks_recognized(bytes(payload))

    def test_zero_digest_encoding(self):
        payload = RelayPayload(RelayCommand.DATA, 1, b"\xaa" * 4, b"x")
        assert payload.encode(zero_digest=True)[5:9] == b"\x00" * 4


class TestRollingDigest:
    def test_preview_does_not_commit(self):
        digest = RollingDigest(b"seed")
        first = digest.preview(b"payload")
        second = digest.preview(b"payload")
        assert first == second

    def test_commit_advances_state(self):
        digest = RollingDigest(b"seed")
        first = digest.commit(b"one")
        second = digest.commit(b"one")
        assert first != second

    def test_same_seed_same_sequence(self):
        a, b = RollingDigest(b"s"), RollingDigest(b"s")
        for payload in (b"x", b"y", b"z"):
            assert a.commit(payload) == b.commit(payload)

    def test_different_seed_different_tags(self):
        assert RollingDigest(b"a").commit(b"x") != RollingDigest(b"b").commit(b"x")


def make_hop_pair():
    """Client-side and relay-side HopCrypto from the same material."""
    material = bytes(range(104))
    return HopCrypto(material), HopCrypto(material)


class TestHopCrypto:
    def test_forward_seal_and_recognize(self):
        client, relay = make_hop_pair()
        payload = RelayPayload(RelayCommand.DATA, 3, b"\x00" * 4, b"secret")
        blob = client.seal_forward(payload)
        plaintext = relay.peel_forward(blob)
        recognized = relay.try_recognize_forward(plaintext)
        assert recognized is not None
        assert recognized.data == b"secret"

    def test_backward_seal_and_recognize(self):
        client, relay = make_hop_pair()
        payload = RelayPayload(RelayCommand.DATA, 3, b"\x00" * 4, b"reply")
        blob = relay.seal_backward(payload)
        plaintext = client.peel_backward(blob)
        recognized = client.try_recognize_backward(plaintext)
        assert recognized is not None
        assert recognized.data == b"reply"

    def test_foreign_cell_not_recognized(self):
        client, relay = make_hop_pair()
        other = HopCrypto(bytes(range(1, 105)))
        payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"x")
        blob = other.seal_forward(payload)
        plaintext = relay.peel_forward(blob)
        assert relay.try_recognize_forward(plaintext) is None

    def test_three_layer_onion_roundtrip(self):
        # Client wraps for hop2 (exit); each relay peels one layer.
        materials = [bytes([i]) * 104 for i in range(3)]
        client_hops = [HopCrypto(m) for m in materials]
        relay_hops = [HopCrypto(m) for m in materials]

        payload = RelayPayload(RelayCommand.DATA, 5, b"\x00" * 4, b"deep secret")
        blob = client_hops[2].seal_forward(payload)
        blob = client_hops[1].add_forward(blob)
        blob = client_hops[0].add_forward(blob)

        for i, relay in enumerate(relay_hops):
            blob = relay.peel_forward(blob)
            recognized = relay.try_recognize_forward(blob)
            if i < 2:
                assert recognized is None, f"hop {i} must not recognize"
            else:
                assert recognized is not None
                assert recognized.data == b"deep secret"

    def test_backward_three_layers(self):
        materials = [bytes([i]) * 104 for i in range(3)]
        client_hops = [HopCrypto(m) for m in materials]
        relay_hops = [HopCrypto(m) for m in materials]

        payload = RelayPayload(RelayCommand.DATA, 5, b"\x00" * 4, b"response")
        blob = relay_hops[2].seal_backward(payload)
        blob = relay_hops[1].add_backward(blob)
        blob = relay_hops[0].add_backward(blob)

        for i, hop in enumerate(client_hops):
            blob = hop.peel_backward(blob)
            recognized = hop.try_recognize_backward(blob)
            if i < 2:
                assert recognized is None
            else:
                assert recognized.data == b"response"

    def test_in_order_stream_of_cells(self):
        client, relay = make_hop_pair()
        for i in range(10):
            payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, f"m{i}".encode())
            blob = client.seal_forward(payload)
            plaintext = relay.peel_forward(blob)
            recognized = relay.try_recognize_forward(plaintext)
            assert recognized is not None and recognized.data == f"m{i}".encode()

    def test_short_material_rejected(self):
        with pytest.raises(TorError):
            HopCrypto(b"short")

    def test_tampered_cell_not_recognized(self):
        client, relay = make_hop_pair()
        payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"x")
        blob = bytearray(client.seal_forward(payload))
        blob[100] ^= 0x01
        plaintext = relay.peel_forward(bytes(blob))
        # Either the recognized marker broke or the digest mismatches.
        assert relay.try_recognize_forward(plaintext) is None


@settings(max_examples=20, deadline=None)
@given(data=st.binary(max_size=RELAY_DATA_SIZE), stream=st.integers(0, 65535))
def test_property_single_layer_roundtrip(data, stream):
    material = bytes(range(104))
    client, relay = HopCrypto(material), HopCrypto(material)
    payload = RelayPayload(RelayCommand.DATA, stream, b"\x00" * 4, data)
    plaintext = relay.peel_forward(client.seal_forward(payload))
    recognized = relay.try_recognize_forward(plaintext)
    assert recognized is not None
    assert recognized.data == data
    assert recognized.stream_id == stream
