"""Circuit handshake and full data-plane circuits over the network."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import TorError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.net.transport import StreamListener
from repro.tor.client import TorClient, select_path
from repro.tor.directory import RouterDescriptor
from repro.tor.handshake import (
    OnionKeyPair,
    client_handshake_finish,
    client_handshake_start,
    relay_handshake,
)
from repro.tor.node import OnionRouterNode
from repro.tor.relay import RelayCore
from repro.tor.cell import RELAY_DATA_SIZE


class TestHandshake:
    def test_client_and_relay_derive_matching_keys(self):
        onion = OnionKeyPair.generate(Rng(b"hs-relay"))
        ephemeral, skin = client_handshake_start(Rng(b"hs-client"))
        relay_crypto, reply = relay_handshake(onion, skin, Rng(b"hs-relay-eph"))
        client_crypto = client_handshake_finish(ephemeral, onion.public, reply)

        from repro.tor.cell import RelayCommand, RelayPayload

        payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"key check")
        blob = client_crypto.seal_forward(payload)
        recognized = relay_crypto.try_recognize_forward(relay_crypto.peel_forward(blob))
        assert recognized is not None and recognized.data == b"key check"

    def test_wrong_onion_key_detected(self):
        """A MITM relay without the target's onion key cannot fake the
        handshake: the key-confirmation hash mismatches."""
        real = OnionKeyPair.generate(Rng(b"real-onion"))
        mitm = OnionKeyPair.generate(Rng(b"mitm-onion"))
        ephemeral, skin = client_handshake_start(Rng(b"victim"))
        _, reply = relay_handshake(mitm, skin, Rng(b"mitm-eph"))
        with pytest.raises(TorError, match="confirmation"):
            client_handshake_finish(ephemeral, real.public, reply)


def build_overlay(n_relays=3, n_exits=1, seed=b"circuit-tests"):
    sim = Simulator()
    net = Network(sim, rng=Rng(seed), default_link=LinkParams(latency=0.002))
    descriptors = []
    cores = {}
    for i in range(n_relays):
        name = f"r{i}"
        host = net.add_host(name)
        rng = Rng(seed, name)
        onion = OnionKeyPair.generate(rng.fork("onion"))
        core = RelayCore(name, onion, rng.fork("core"))
        cores[name] = core
        OnionRouterNode(host, core)
        descriptors.append(
            RouterDescriptor(
                nickname=name,
                or_port=9001,
                onion_public=onion.public,
                exit_ports=frozenset({80}) if i < n_exits else frozenset(),
            )
        )
    web = net.add_host("web")
    listener = StreamListener(web, 80)

    def web_server():
        while True:
            conn = yield listener.accept()
            sim.spawn(handle(conn))

    def handle(conn):
        while True:
            request = yield conn.recv_message()
            if request is None:
                return
            conn.send_message(b"echo:" + request)

    sim.spawn(web_server())
    client_host = net.add_host("client")
    client = TorClient(client_host, Rng(seed, "client"))
    return sim, net, descriptors, cores, client


class TestCircuits:
    @pytest.mark.parametrize("hops", [1, 2, 3, 4])
    def test_circuit_lengths(self, hops):
        sim, _, descriptors, _, client = build_overlay(n_relays=max(hops, 3))
        # Exit must be descriptor[0] (only exit): put it last.
        path = descriptors[1 : 1 + hops - 1] + [descriptors[0]]
        out = {}

        def proc():
            circuit = yield from client.build_circuit(path)
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, b"ping")
            out["reply"] = yield circuit.recv(stream)

        sim.spawn(proc())
        sim.run(until=120)
        assert out["reply"] == b"echo:ping"

    def test_large_transfer_chunks_into_cells(self):
        sim, _, descriptors, _, client = build_overlay()
        data = bytes(range(256)) * 8  # 2048 bytes > one cell
        out = {}

        # Each request cell becomes one web message, echoed with a
        # prefix; backward the replies arrive as an ordered byte
        # stream re-chunked into cells.
        expected_stream = b"".join(
            b"echo:" + data[i : i + RELAY_DATA_SIZE]
            for i in range(0, len(data), RELAY_DATA_SIZE)
        )

        def proc():
            circuit = yield from client.build_circuit(
                [descriptors[1], descriptors[2], descriptors[0]]
            )
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, data)
            received = b""
            while len(received) < len(expected_stream):
                received += yield circuit.recv(stream)
            out["reply"] = received

        sim.spawn(proc())
        sim.run(until=300)
        assert out["reply"] == expected_stream

    def test_two_streams_on_one_circuit(self):
        sim, _, descriptors, _, client = build_overlay()
        out = {}

        def proc():
            circuit = yield from client.build_circuit(
                [descriptors[1], descriptors[2], descriptors[0]]
            )
            s1 = yield from circuit.open_stream("web", 80)
            s2 = yield from circuit.open_stream("web", 80)
            circuit.send(s1, b"one")
            circuit.send(s2, b"two")
            out["r1"] = yield circuit.recv(s1)
            out["r2"] = yield circuit.recv(s2)

        sim.spawn(proc())
        sim.run(until=120)
        assert out == {"r1": b"echo:one", "r2": b"echo:two"}

    def test_two_circuits_share_relays(self):
        sim, _, descriptors, _, client = build_overlay()
        out = {}

        def proc(tag, path):
            circuit = yield from client.build_circuit(path)
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, tag.encode())
            out[tag] = yield circuit.recv(stream)

        sim.spawn(proc("a", [descriptors[1], descriptors[2], descriptors[0]]))
        sim.spawn(proc("b", [descriptors[2], descriptors[1], descriptors[0]]))
        sim.run(until=200)
        assert out == {"a": b"echo:a", "b": b"echo:b"}

    def test_middle_relay_sees_no_plaintext(self):
        sim, net, descriptors, cores, client = build_overlay()
        secret = b"the client's private request"
        wire_blobs = []
        net.tap = lambda d: (wire_blobs.append(d.payload), d)[1]
        out = {}

        def proc():
            circuit = yield from client.build_circuit(
                [descriptors[1], descriptors[2], descriptors[0]]
            )
            stream = yield from circuit.open_stream("web", 80)
            circuit.send(stream, secret)
            out["reply"] = yield circuit.recv(stream)

        sim.spawn(proc())
        sim.run(until=120)
        assert out["reply"] == b"echo:" + secret
        # The secret appears on the wire only on the exit->web leg
        # (which is outside Tor); no cell between relays leaks it.
        on_wire = b"".join(wire_blobs)
        # it must appear exactly in the exit->web and web->exit stream
        assert on_wire.count(secret) == 2

    def test_empty_path_rejected(self):
        sim, _, _, _, client = build_overlay()

        def proc():
            yield from client.build_circuit([])

        process = sim.spawn(proc())
        with pytest.raises(Exception):
            sim.run(until=10)


class TestPathSelection:
    def make_descriptors(self):
        rng = Rng(b"ps")
        out = []
        for i in range(6):
            onion = OnionKeyPair.generate(rng.fork(str(i)))
            out.append(
                RouterDescriptor(
                    nickname=f"r{i}",
                    or_port=9001,
                    onion_public=onion.public,
                    exit_ports=frozenset({80}) if i < 2 else frozenset(),
                    bandwidth=100 if i % 2 == 0 else 50,
                )
            )
        return out

    def test_path_constraints(self):
        descriptors = self.make_descriptors()
        rng = Rng(b"select")
        for _ in range(10):
            path = select_path(descriptors, rng, exit_port=80)
            assert len(path) == 3
            assert len({d.nickname for d in path}) == 3
            assert path[-1].allows_exit_to(80)

    def test_no_exit_for_port(self):
        descriptors = self.make_descriptors()
        with pytest.raises(TorError, match="exit"):
            select_path(descriptors, Rng(b"x"), exit_port=443)

    def test_too_few_relays(self):
        descriptors = self.make_descriptors()[:2]
        with pytest.raises(TorError):
            select_path(descriptors, Rng(b"x"), length=3)
