"""Property tests on the layered onion crypto (arbitrary circuits)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tor.cell import RELAY_DATA_SIZE, RelayCommand, RelayPayload
from repro.tor.onion import HopCrypto


def make_pairs(n_hops, seed):
    materials = [bytes([seed ^ i]) * 104 for i in range(n_hops)]
    return (
        [HopCrypto(m) for m in materials],
        [HopCrypto(m) for m in materials],
    )


@settings(max_examples=25, deadline=None)
@given(
    n_hops=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=200),
    messages=st.lists(st.binary(max_size=RELAY_DATA_SIZE), min_size=1, max_size=6),
)
def test_property_forward_onion_any_depth(n_hops, seed, messages):
    """Any circuit depth, any message sequence: only the last hop
    recognizes, and it recovers every message in order."""
    client_hops, relay_hops = make_pairs(n_hops, seed)
    for data in messages:
        payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, data)
        blob = client_hops[-1].seal_forward(payload)
        for hop in reversed(client_hops[:-1]):
            blob = hop.add_forward(blob)
        for i, relay in enumerate(relay_hops):
            blob = relay.peel_forward(blob)
            recognized = relay.try_recognize_forward(blob)
            if i < n_hops - 1:
                assert recognized is None
            else:
                assert recognized is not None
                assert recognized.data == data


@settings(max_examples=25, deadline=None)
@given(
    n_hops=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=200),
    messages=st.lists(st.binary(max_size=RELAY_DATA_SIZE), min_size=1, max_size=6),
)
def test_property_backward_onion_any_depth(n_hops, seed, messages):
    client_hops, relay_hops = make_pairs(n_hops, seed)
    for data in messages:
        payload = RelayPayload(RelayCommand.DATA, 2, b"\x00" * 4, data)
        blob = relay_hops[-1].seal_backward(payload)
        for hop in reversed(relay_hops[:-1]):
            blob = hop.add_backward(blob)
        recognized = None
        for i, hop in enumerate(client_hops):
            blob = hop.peel_backward(blob)
            recognized = hop.try_recognize_backward(blob)
            if recognized is not None:
                assert i == n_hops - 1
                break
        assert recognized is not None and recognized.data == data


@settings(max_examples=20, deadline=None)
@given(
    flips=st.integers(min_value=0, max_value=506),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_any_single_bitflip_never_accepted_as_valid(flips, seed):
    """Flip any byte of a sealed forward cell: the exit either fails
    the recognized marker or the digest — never silently accepts."""
    client_hops, relay_hops = make_pairs(2, seed)
    payload = RelayPayload(RelayCommand.DATA, 1, b"\x00" * 4, b"the real content")
    blob = bytearray(client_hops[1].seal_forward(payload))
    blob = bytearray(client_hops[0].add_forward(bytes(blob)))
    blob[flips] ^= 0x01
    peeled = relay_hops[0].peel_forward(bytes(blob))
    mid = relay_hops[0].try_recognize_forward(peeled)
    assert mid is None  # the middle hop must never claim it
    peeled2 = relay_hops[1].peel_forward(peeled)
    recognized = relay_hops[1].try_recognize_forward(peeled2)
    if recognized is not None:
        # Statistically impossible for the digest to survive a flip in
        # covered bytes; a flip in the padding region is the only
        # acceptable survival and must leave the content intact.
        assert recognized.data == b"the real content"
