"""Incremental-deployment model (security vs anonymity tradeoff)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import Rng
from repro.errors import TorError
from repro.tor.incremental import (
    ClientPolicy,
    make_population,
    select_circuit,
    simulate,
)


class TestPopulation:
    def test_counts(self):
        relays = make_population(20, 6, 3, 0.5, Rng(b"pop"))
        assert len(relays) == 20
        assert sum(r.is_exit for r in relays) == 6
        assert sum(r.malicious for r in relays) == 3

    def test_malicious_never_sgx_verified(self):
        for fraction in (0.0, 0.5, 1.0):
            relays = make_population(20, 6, 4, fraction, Rng(b"pop2"))
            assert not any(r.sgx_verified for r in relays if r.malicious)

    def test_full_fraction_verifies_all_honest(self):
        relays = make_population(20, 6, 2, 1.0, Rng(b"pop3"))
        assert all(r.sgx_verified for r in relays if not r.malicious)

    def test_zero_fraction_verifies_none(self):
        relays = make_population(20, 6, 2, 0.0, Rng(b"pop4"))
        assert not any(r.sgx_verified for r in relays)

    def test_malicious_prefer_exits(self):
        relays = make_population(20, 6, 2, 0.5, Rng(b"pop5"))
        assert all(r.is_exit for r in relays if r.malicious)

    def test_invalid_configs_rejected(self):
        with pytest.raises(TorError):
            make_population(5, 2, 6, 0.5, Rng(b"x"))
        with pytest.raises(TorError):
            make_population(5, 6, 1, 0.5, Rng(b"x"))


class TestSelection:
    def test_distinct_hops(self):
        relays = make_population(20, 6, 2, 0.5, Rng(b"sel"))
        rng = Rng(b"paths")
        for _ in range(50):
            circuit = select_circuit(relays, ClientPolicy.ANY, rng)
            names = [r.nickname for r in circuit]
            assert len(set(names)) == 3
            assert circuit[2].is_exit

    def test_require_sgx_uses_only_verified(self):
        relays = make_population(20, 8, 2, 0.5, Rng(b"sel2"))
        rng = Rng(b"paths2")
        for _ in range(50):
            circuit = select_circuit(relays, ClientPolicy.REQUIRE_SGX, rng)
            assert circuit is not None
            assert all(r.sgx_verified for r in circuit)

    def test_require_sgx_infeasible_returns_none(self):
        relays = make_population(20, 6, 2, 0.0, Rng(b"sel3"))
        assert select_circuit(relays, ClientPolicy.REQUIRE_SGX, Rng(b"p")) is None

    def test_prefer_sgx_falls_back(self):
        relays = make_population(20, 6, 2, 0.0, Rng(b"sel4"))
        circuit = select_circuit(relays, ClientPolicy.PREFER_SGX, Rng(b"p"))
        assert circuit is not None  # no SGX relays, still works


class TestSimulation:
    def test_legacy_exposure_matches_fraction_of_malicious_exits(self):
        stats = simulate(
            n_relays=30, n_exits=10, n_malicious=3,
            sgx_fraction=0.5, policy=ClientPolicy.ANY, trials=3000,
        )
        assert abs(stats.p_tamper - 0.3) < 0.06
        assert stats.availability == 1.0

    def test_prefer_sgx_eliminates_exposure_with_any_sgx_exit(self):
        stats = simulate(
            sgx_fraction=0.25, policy=ClientPolicy.PREFER_SGX, trials=1000
        )
        assert stats.p_tamper == 0.0

    def test_require_sgx_availability_cliff(self):
        none = simulate(sgx_fraction=0.0, policy=ClientPolicy.REQUIRE_SGX, trials=200)
        assert none.availability == 0.0
        half = simulate(sgx_fraction=0.5, policy=ClientPolicy.REQUIRE_SGX, trials=200)
        assert half.availability == 1.0

    def test_bad_apple_rarer_than_tamper(self):
        stats = simulate(
            n_relays=30, n_exits=10, n_malicious=5,
            sgx_fraction=0.0, policy=ClientPolicy.ANY, trials=4000,
        )
        assert 0 < stats.p_bad_apple < stats.p_tamper


@settings(max_examples=15, deadline=None)
@given(
    fraction=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    malicious=st.integers(min_value=0, max_value=5),
)
def test_property_sgx_policies_never_pick_malicious(fraction, malicious):
    stats = simulate(
        n_relays=25,
        n_exits=8,
        n_malicious=malicious,
        sgx_fraction=fraction,
        policy=ClientPolicy.REQUIRE_SGX,
        trials=300,
    )
    assert stats.tampering_exit == 0
    assert stats.bad_apple == 0
