"""Hypothesis properties for the fault-injection subsystem.

Two invariants hold for *any* rule set and any fault schedule:

* determinism — the same seed and the same opportunity sequence
  always produce a byte-identical :class:`~repro.faults.FaultLog`;
* transport correctness — the reliable stream delivers exactly the
  sent payloads, in order, under any drop/duplicate/reorder/corrupt
  schedule the plan can generate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.crypto.drbg import Rng
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.net.transport import StreamListener, connect

_kinds = st.sampled_from(faults.ALL_KINDS)
_sites = st.sampled_from(
    [
        "net:a->b",
        "net:b->a",
        "ocall:send_packets",
        "ecall:mbox:inspect_record",
        "channel:initiator",
        "egetkey:report:idc",
    ]
)
_rules = st.builds(
    faults.FaultRule,
    kind=_kinds,
    rate=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
    max_count=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    rules=st.lists(_rules, min_size=1, max_size=4),
    opportunities=st.lists(st.tuples(_kinds, _sites), max_size=60),
)
def test_property_same_seed_same_fault_log(seed, rules, opportunities):
    outcomes = []
    for _ in range(2):
        plan = faults.FaultPlan(seed, rules)
        decisions = [
            plan.decide(kind, site) is not None for kind, site in opportunities
        ]
        outcomes.append((decisions, plan.log.digest(), plan.log.counts()))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=10, deadline=None)
@given(
    messages=st.lists(
        st.binary(min_size=0, max_size=3000), min_size=1, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=1000),
    drop_pct=st.integers(min_value=0, max_value=8),
    dup_pct=st.integers(min_value=0, max_value=8),
    reorder_pct=st.integers(min_value=0, max_value=8),
    corrupt_pct=st.integers(min_value=0, max_value=4),
)
def test_property_stream_exact_under_any_fault_schedule(
    messages, seed, drop_pct, dup_pct, reorder_pct, corrupt_pct
):
    plan = faults.FaultPlan(
        seed,
        [
            faults.FaultRule(faults.DROP, rate=drop_pct / 100, max_count=30),
            faults.FaultRule(faults.DUPLICATE, rate=dup_pct / 100, max_count=30),
            faults.FaultRule(
                faults.REORDER, rate=reorder_pct / 100, max_count=30, param=0.02
            ),
            faults.FaultRule(faults.CORRUPT, rate=corrupt_pct / 100, max_count=20),
        ],
    )
    sim = Simulator()
    net = Network(
        sim, rng=Rng(b"fault-prop-net"), default_link=LinkParams(latency=0.002)
    )
    client_host = net.add_host("client")
    server_host = net.add_host("server")
    listener = StreamListener(server_host, 7)
    got = []

    def server():
        conn = yield listener.accept()
        for _ in messages:
            got.append((yield conn.recv_message()))

    def client():
        conn = yield from connect(client_host, "server", 7, retries=30)
        for m in messages:
            conn.send_message(m)

    with faults.active(plan):
        sim.spawn(server())
        sim.spawn(client())
        sim.run(until=600.0)
    assert got == list(messages)
