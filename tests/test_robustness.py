"""Failure injection and hostile-host robustness.

The SGX threat model lets the host do anything short of breaking the
CPU: kill enclaves, drop/replay/corrupt traffic, lie in ocall returns
(Iago attacks).  These tests throw those behaviors at the stack.
"""

import pytest

from repro.core import (
    AttestedServer,
    EnclaveNode,
    SecureApplicationProgram,
    open_attested_session,
)
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ProtocolError, SgxError
from repro.net.network import LinkParams, Network
from repro.net.sim import Simulator
from repro.sgx import EnclaveProgram, IdentityPolicy, SgxPlatform
from repro.sgx.measurement import measure_program
from repro.sgx.quoting import AttestationAuthority


class EchoProgram(SecureApplicationProgram):
    def _on_secure_message(self, session_id, payload):
        return b"echo:" + payload

    def push(self, session_id, payload):
        """App-local API: queue an outbound secure message."""
        self._send_secure(session_id, payload)


class IagoVictimProgram(EnclaveProgram):
    """Receives packets through the checked ocall path."""

    def receive_via(self, receiver):
        return self.ctx.recv_packets(receiver)


class TestIagoDefenses:
    @pytest.fixture()
    def enclave(self):
        platform = SgxPlatform("iago-host", rng=Rng(b"iago"))
        author = generate_rsa_keypair(512, Rng(b"iago-author"))
        return platform.load_enclave(IagoVictimProgram(), author_key=author)

    def test_honest_receiver_passes(self, enclave):
        packets = enclave.ecall("receive_via", lambda: [b"a", b"b"])
        assert packets == [b"a", b"b"]

    def test_non_sequence_rejected(self, enclave):
        with pytest.raises(SgxError, match="non-sequence"):
            enclave.ecall("receive_via", lambda: b"not a list")

    def test_non_bytes_packet_rejected(self, enclave):
        with pytest.raises(SgxError, match="non-bytes"):
            enclave.ecall("receive_via", lambda: [b"ok", 12345])

    def test_oversized_packet_rejected(self, enclave):
        from repro.sgx.runtime import EnclaveContext

        huge = b"\x00" * (EnclaveContext.MAX_PACKET_BYTES + 1)
        with pytest.raises(SgxError, match="cap"):
            enclave.ecall("receive_via", lambda: [huge])

    def test_packet_flood_rejected(self, enclave):
        from repro.sgx.runtime import EnclaveContext

        flood = [b"x"] * (EnclaveContext.MAX_PACKETS_PER_RECV + 1)
        with pytest.raises(SgxError, match="packets"):
            enclave.ecall("receive_via", lambda: flood)

    def test_bytearray_is_copied_in(self, enclave):
        source = bytearray(b"mutable")
        packets = enclave.ecall("receive_via", lambda: [source])
        source[0] = 0  # the host mutates its buffer afterwards
        assert packets[0] == b"mutable"  # the enclave kept its own copy


def build_world(loss=0.0, seed=b"robust"):
    sim = Simulator()
    network = Network(
        sim,
        rng=Rng(seed, "net"),
        default_link=LinkParams(latency=0.002, loss_rate=loss),
    )
    authority = AttestationAuthority(Rng(seed, "authority"))
    author = generate_rsa_keypair(512, Rng(seed, "author"))
    server_node = EnclaveNode(network, "server", authority, rng=Rng(seed, "sn"))
    client_node = EnclaveNode(network, "client", authority, rng=Rng(seed, "cn"))
    server = server_node.load(EchoProgram(), author_key=author, name="svc")
    client = client_node.load(EchoProgram(), author_key=author, name="cli")
    info = authority.verification_info()
    server.ecall("configure_trust", info)
    client.ecall("configure_trust", info)
    AttestedServer(server_node, server, 443)
    policy = IdentityPolicy.for_mrenclave(measure_program(EchoProgram))
    return sim, network, client_node, client, server_node, server, info, policy


class TestAttestedSessionsUnderFailure:
    def test_handshake_survives_packet_loss(self):
        sim, _, client_node, client, _, _, info, policy = build_world(loss=0.08)
        outcome = {}

        def proc():
            session = yield from open_attested_session(
                client_node, client, "server", 443, info, policy
            )
            outcome["ok"] = session.established

        sim.spawn(proc())
        sim.run(until=300.0)
        assert outcome.get("ok") is True

    def test_replayed_record_rejected_in_enclave(self):
        """A malicious host pump captures a legitimate encrypted frame
        and delivers it twice; the enclave channel's sequencing/MAC
        refuses the replay."""
        sim, _, client_node, client, _, server, info, policy = build_world()
        outcome = {}

        def proc():
            session = yield from open_attested_session(
                client_node, client, "server", 443, info, policy
            )
            outcome["client_sid"] = session.session_id

        sim.spawn(proc())
        sim.run(until=60.0)
        client_sid = outcome["client_sid"]

        # The host asks the client enclave for an outbound frame...
        client.ecall("push", client_sid, b"one genuine message")
        frames = client.ecall("collect_outgoing", client_sid)
        assert len(frames) == 1
        server_sid = server.ecall("session_ids")[0]

        # ...delivers it once (fine), then replays it (refused).
        reply = server.ecall("session_handle", server_sid, frames[0])
        assert reply is not None  # the echo
        with pytest.raises(ProtocolError):
            server.ecall("session_handle", server_sid, frames[0])

    def test_garbage_record_rejected(self):
        sim, _, client_node, client, _, server, info, policy = build_world(
            seed=b"garbage"
        )
        done = {}

        def proc():
            session = yield from open_attested_session(
                client_node, client, "server", 443, info, policy
            )
            done["ok"] = session.established

        sim.spawn(proc())
        sim.run(until=60.0)
        assert done["ok"]
        server_sid = server.ecall("session_ids")[0]
        with pytest.raises(ProtocolError):
            server.ecall("session_handle", server_sid, b"\x01" + b"\x00" * 64)

    def test_enclave_destruction_is_detectable_dos(self):
        sim, _, client_node, client, server_node, server, info, policy = build_world()
        outcome = {}

        def proc():
            session = yield from open_attested_session(
                client_node, client, "server", 443, info, policy
            )
            outcome["established"] = session.established

        sim.spawn(proc())
        sim.run(until=60.0)
        assert outcome["established"]
        server_node.platform.destroy_enclave(server)
        with pytest.raises(SgxError, match="destroyed"):
            server.ecall("session_established", "whatever")


class TestEpcPressure:
    def test_epc_exhaustion_fails_loudly(self):
        platform = SgxPlatform("tiny", rng=Rng(b"tiny-epc"), epc_frames=6)
        author = generate_rsa_keypair(512, Rng(b"tiny-author"))

        class Big(EnclaveProgram):
            pass

        platform.load_enclave(Big(), author_key=author, name="one")
        with pytest.raises(SgxError, match="EPC exhausted"):
            # Each enclave needs SECS + TCS + code + heap pages.
            platform.load_enclave(Big(), author_key=author, name="two")

    def test_heap_growth_consumes_epc(self):
        platform = SgxPlatform("heapy", rng=Rng(b"heapy"), epc_frames=16)
        author = generate_rsa_keypair(512, Rng(b"heapy-author"))

        class Gobbler(EnclaveProgram):
            def gobble(self, n):
                return self.ctx.alloc(n)

        enclave = platform.load_enclave(Gobbler(), author_key=author)
        free_before = platform.epc.free_frames
        enclave.ecall("gobble", 3 * 4096)
        assert platform.epc.free_frames < free_before


class TestTorOnPathTampering:
    def test_flipped_cell_detected_by_digest(self):
        """An on-path host flips bits inside a relay cell: the layered
        digest makes the client (or relay) refuse it rather than accept
        corrupted data."""
        from repro.net.transport import StreamListener
        from repro.tor.client import TorClient
        from repro.tor.directory import RouterDescriptor
        from repro.tor.handshake import OnionKeyPair
        from repro.tor.node import OnionRouterNode
        from repro.tor.relay import RelayCore
        from repro.errors import NetworkError, TorError

        sim = Simulator()
        net = Network(sim, rng=Rng(b"tamper-net"), default_link=LinkParams(latency=0.002))
        descriptors = []
        for name in ("g", "m", "e"):
            host = net.add_host(name)
            rng = Rng(b"tamper", name)
            onion = OnionKeyPair.generate(rng.fork("k"))
            OnionRouterNode(host, RelayCore(name, onion, rng.fork("c")))
            descriptors.append(
                RouterDescriptor(
                    nickname=name,
                    or_port=9001,
                    onion_public=onion.public,
                    exit_ports=frozenset({80}) if name == "e" else frozenset(),
                )
            )
        web = net.add_host("web")
        listener = StreamListener(web, 80)

        def web_srv():
            while True:
                conn = yield listener.accept()
                sim.spawn(handle(conn))

        def handle(conn):
            req = yield conn.recv_message()
            if req is not None:
                conn.send_message(b"resp:" + req)

        sim.spawn(web_srv())
        client_host = net.add_host("client")
        client = TorClient(client_host, Rng(b"tamper-client"))

        # Tap: corrupt the payload byte of backward cells between the
        # middle relay and the guard once the circuit carries data.
        state = {"armed": False, "hits": 0}

        def tap(dgram):
            if (
                state["armed"]
                and dgram.src == "m"
                and dgram.dst == "g"
                and dgram.size > 600
                and state["hits"] == 0
            ):
                state["hits"] += 1
                corrupted = bytearray(dgram.payload)
                corrupted[-100] ^= 0xFF
                import dataclasses as dc

                return dc.replace(dgram, payload=bytes(corrupted))
            return dgram

        net.tap = tap
        failures = []

        def proc():
            circuit = yield from client.build_circuit(descriptors)
            stream = yield from circuit.open_stream("web", 80)
            state["armed"] = True
            circuit.send(stream, b"important")
            try:
                reply = yield circuit.recv(stream, timeout=10.0)
                failures.append(("reply", reply))
            except Exception as exc:  # noqa: BLE001 - classified below
                failures.append(("error", type(exc).__name__))

        sim.spawn(proc())
        try:
            sim.run(until=120.0)
        except NetworkError:
            # The client pump dies on the unrecognizable cell: also an
            # acceptable "detected" outcome.
            failures.append(("error", "pump"))
        assert failures, "client neither errored nor received"
        kind, value = failures[0]
        if kind == "reply":
            # If anything was delivered it must NOT be silently corrupt
            # application data accepted as valid.
            assert value == b"resp:important"
        else:
            assert value in ("TorError", "SimTimeout", "pump")


class TestSealedAuthorityRestart:
    def test_directory_state_survives_enclave_restart(self):
        from repro.tor.apps import DirectoryAuthorityProgram
        from repro.tor.directory import RouterDescriptor
        from repro.tor.handshake import OnionKeyPair

        authority_svc = AttestationAuthority(Rng(b"seal-auth"))
        platform = SgxPlatform("dir-host", authority_svc, rng=Rng(b"dir-host"))
        author = generate_rsa_keypair(512, Rng(b"dir-author"))

        first = platform.load_enclave(
            DirectoryAuthorityProgram(), author_key=author, name="dir1"
        )
        public = first.ecall("configure_authority", "auth1", False, None)
        onion = OnionKeyPair.generate(Rng(b"r1"))
        descriptor = RouterDescriptor(
            nickname="r1", or_port=9001, onion_public=onion.public
        )
        first.ecall("install_peer_keys", {}, 1)
        blob = first.ecall("seal_state")
        platform.destroy_enclave(first)

        second = platform.load_enclave(
            DirectoryAuthorityProgram(), author_key=author, name="dir2"
        )
        name = second.ecall("restore_state", blob)
        assert name == "auth1"
        assert second.ecall("public_key") == public  # same identity!

    def test_sealed_state_unreadable_by_modified_build(self):
        from repro.tor.apps import DirectoryAuthorityProgram
        from repro.errors import SealingError

        class EvilDirectoryProgram(DirectoryAuthorityProgram):
            def exfiltrate(self):
                return "different code, different measurement"

        authority_svc = AttestationAuthority(Rng(b"seal-auth2"))
        platform = SgxPlatform("dir-host2", authority_svc, rng=Rng(b"dir-host2"))
        author = generate_rsa_keypair(512, Rng(b"dir-author2"))
        first = platform.load_enclave(
            DirectoryAuthorityProgram(), author_key=author, name="dir1"
        )
        first.ecall("configure_authority", "auth1", False, None)
        blob = first.ecall("seal_state")

        evil = platform.load_enclave(
            EvilDirectoryProgram(), author_key=author, name="evil"
        )
        with pytest.raises(SealingError):
            evil.ecall("restore_state", blob)
