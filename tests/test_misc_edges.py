"""Edge-path coverage across packages (small behaviors, big surprises)."""

import pytest

from repro.crypto.drbg import Rng
from repro.errors import MiddleboxError, SealingError, SgxError, TorError


class TestSealingEdges:
    def test_peek_malformed_blob(self):
        from repro.sgx import sealing

        with pytest.raises(SealingError):
            sealing.peek(b"")
        with pytest.raises(SealingError):
            sealing.peek(b"\x00" * 33)  # bad policy code

    def test_unseal_short_blob(self):
        from repro.sgx import sealing

        with pytest.raises(SealingError, match="short"):
            sealing.unseal(b"\x00" * 16, b"tiny")

    def test_seal_validates_inputs(self):
        from repro.sgx import sealing
        from repro.sgx.keys import SealPolicy

        with pytest.raises(SealingError):
            sealing.seal(b"k" * 16, b"short-id", SealPolicy.MRENCLAVE, b"d", b"n" * 16)
        with pytest.raises(SealingError):
            sealing.seal(b"k" * 16, b"i" * 32, SealPolicy.MRENCLAVE, b"d", b"bad")


class TestRelayEdges:
    def make_core(self):
        from repro.tor.handshake import OnionKeyPair
        from repro.tor.relay import RelayCore

        rng = Rng(b"relay-edge")
        return RelayCore("r", OnionKeyPair.generate(rng.fork("k")), rng.fork("c"))

    def test_relay_cell_for_unknown_circuit_destroys(self):
        from repro.tor.cell import Cell, CellCommand

        core = self.make_core()
        cell = Cell(9, CellCommand.RELAY, b"\x00" * 507)
        directives = core.handle_cell(1, cell.encode())
        assert directives == [("destroy", 1, 9)]

    def test_destroy_tears_down_circuit(self):
        from repro.tor.cell import Cell, CellCommand
        from repro.tor.handshake import client_handshake_start

        core = self.make_core()
        _, skin = client_handshake_start(Rng(b"cli"))
        created = core.handle_cell(1, Cell(5, CellCommand.CREATE, skin).encode())
        assert created[0][0] == "send"
        core.handle_cell(1, Cell(5, CellCommand.DESTROY, b"").encode())
        # The circuit is gone: further relay cells are refused.
        out = core.handle_cell(1, Cell(5, CellCommand.RELAY, b"\x00" * 507).encode())
        assert out == [("destroy", 1, 5)]

    def test_duplicate_create_rejected(self):
        from repro.tor.cell import Cell, CellCommand
        from repro.tor.handshake import client_handshake_start

        core = self.make_core()
        _, skin = client_handshake_start(Rng(b"cli2"))
        core.handle_cell(1, Cell(5, CellCommand.CREATE, skin).encode())
        with pytest.raises(TorError, match="already exists"):
            core.handle_cell(1, Cell(5, CellCommand.CREATE, skin).encode())

    def test_padding_cells_ignored(self):
        from repro.tor.cell import Cell, CellCommand

        core = self.make_core()
        assert core.handle_cell(1, Cell(0, CellCommand.PADDING, b"").encode()) == []


class TestNodeEdges:
    def test_unknown_directive_raises(self):
        from repro.net.network import LinkParams, Network
        from repro.net.sim import Simulator
        from repro.tor.node import OnionRouterNode

        sim = Simulator()
        net = Network(sim, rng=Rng(b"node-edge"), default_link=LinkParams())
        host = net.add_host("r")

        class FakeCore:
            def handle_cell(self, link, data):
                return [("teleport", 1)]

        node = OnionRouterNode(host, FakeCore())
        with pytest.raises(TorError, match="unknown relay directive"):
            node._execute([("teleport", 1)])

    def test_requires_exactly_one_engine(self):
        from repro.net.network import LinkParams, Network
        from repro.net.sim import Simulator
        from repro.tor.node import OnionRouterNode

        sim = Simulator()
        net = Network(sim, rng=Rng(b"node-edge2"), default_link=LinkParams())
        host = net.add_host("r")
        with pytest.raises(TorError):
            OnionRouterNode(host, None, enclave=None)


class TestDhtEdges:
    def test_leave_last_node_orphans_keys_quietly(self):
        from repro.tor.dht import ChordRing

        ring = ChordRing()
        ring.join("only")
        ring.put("only", "k", "v")
        ring.leave("only")
        assert ring.members() == []

    def test_unknown_member_lookup_raises(self):
        from repro.tor.dht import ChordRing

        ring = ChordRing()
        ring.join("a")
        with pytest.raises(TorError):
            ring.node("ghost")


class TestChannelEdges:
    def test_ecb_channel_handles_various_sizes(self):
        from repro.net.channel import SecureRecordChannel
        from repro.sgx.attestation import SessionKeys

        keys = SessionKeys.derive(b"s", b"\x00" * 32)
        a = SecureRecordChannel(keys, "initiator", "ecb")
        b = SecureRecordChannel(keys, "responder", "ecb")
        for size in (0, 1, 15, 16, 17, 1000):
            payload = bytes(size)
            assert b.open(a.protect(payload)) == payload

    def test_host_repr_and_unbind(self):
        from repro.net.network import LinkParams, Network
        from repro.net.sim import Simulator

        net = Network(Simulator(), rng=Rng(b"h"), default_link=LinkParams())
        host = net.add_host("box")
        host.bind(7)
        assert "box" in repr(host)
        host.unbind(7)
        host.bind(7)  # rebinding after unbind works


class TestMiddleboxEdges:
    def test_inspect_requires_valid_direction(self):
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.middlebox.mbox import MiddleboxProgram
        from repro.sgx import SgxPlatform

        platform = SgxPlatform("mb-edge", rng=Rng(b"mb-edge"))
        author = generate_rsa_keypair(512, Rng(b"mb-author"))
        enclave = platform.load_enclave(MiddleboxProgram(), author_key=author)
        enclave.ecall("configure_dpi", [("r", b"x", "alert")])
        with pytest.raises(MiddleboxError, match="direction"):
            enclave.ecall("inspect_record", "f", "sideways", b"rec")

    def test_unprovisioned_flow_is_opaque(self):
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.middlebox.mbox import MiddleboxProgram
        from repro.sgx import SgxPlatform

        platform = SgxPlatform("mb-edge2", rng=Rng(b"mb-edge2"))
        author = generate_rsa_keypair(512, Rng(b"mb-author2"))
        enclave = platform.load_enclave(MiddleboxProgram(), author_key=author)
        enclave.ecall("configure_dpi", [("r", b"x", "alert")])
        verdict, alerts = enclave.ecall("inspect_record", "f", "c2s", b"anything")
        assert verdict == "opaque" and alerts == []

    def test_provision_role_validated(self):
        from repro.middlebox.mbox import encode_provision
        from repro.sgx.attestation import SessionKeys

        keys = SessionKeys.derive(b"s", b"\x00" * 32)
        with pytest.raises(MiddleboxError):
            encode_provision("flow", keys, "eavesdropper")


class TestEnclaveAexEdge:
    def test_zero_work_ecall_no_aex(self):
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sgx import EnclaveProgram, SgxPlatform

        class Idle(EnclaveProgram):
            def nop(self):
                return None

        platform = SgxPlatform("aex-edge", rng=Rng(b"aex-edge"), interrupt_rate=0.1)
        author = generate_rsa_keypair(512, Rng(b"aex-edge-author"))
        enclave = platform.load_enclave(Idle(), author_key=author)
        before = platform.accountant.snapshot()
        enclave.ecall("nop")
        delta = platform.accountant.delta(before)[enclave.domain]
        # Only the trampoline's own instructions can trigger AEX here.
        assert delta.sgx_instructions < 100
