"""Batched enclave crossings and batched secure records.

The load engine's ``batch=K`` knob leans on two mechanisms pinned
here: ``Enclave.ecall_batch`` (K ecalls under one EENTER/EEXIT) and
``SecureRecordChannel.protect_many``/``open_many`` (K application
messages under one seal/MAC).  The crucial property is *equivalence*:
K=1 charges exactly what the unbatched path charges, and any K
returns the same results the unbatched path returns.
"""

import pytest

from tests.fixtures import make_author_key, make_authority, make_platform

from repro.errors import ProtocolError, SgxError
from repro.net.channel import (
    SecureRecordChannel,
    decode_record_batch,
    encode_record_batch,
)
from repro.sgx import EnclaveProgram
from repro.sgx.attestation import SessionKeys


class ArithmeticProgram(EnclaveProgram):
    """Tiny workload: per-call state mutation with a return value."""

    def on_load(self, ctx):
        super().on_load(ctx)
        self._total = 0

    def add(self, n):
        self._total += n
        return self._total

    def boom(self):
        raise ValueError("handler failure")


def _fresh_enclave(tag):
    authority = make_authority(b"batch-auth:" + tag)
    platform = make_platform("batch-host", authority, seed=b"batch:" + tag)
    key = make_author_key(b"batch-author")
    return platform, platform.load_enclave(ArithmeticProgram(), author_key=key)


class TestEcallBatch:
    def test_single_element_batch_charges_exactly_one_ecall(self):
        """K=1 parity, integer for integer — the load engine's batch=1
        runs must reconcile against unbatched baselines exactly."""
        p_plain, e_plain = _fresh_enclave(b"plain")
        p_batch, e_batch = _fresh_enclave(b"batch")

        before_plain = p_plain.accountant.snapshot()
        before_batch = p_batch.accountant.snapshot()
        plain_result = e_plain.ecall("add", 7)
        batch_result = e_batch.ecall_batch([("add", (7,), {})])

        assert batch_result == [plain_result]
        delta_plain = p_plain.accountant.delta(before_plain)
        delta_batch = p_batch.accountant.delta(before_batch)
        assert {d: c.as_dict() for d, c in delta_batch.items()} == {
            d: c.as_dict() for d, c in delta_plain.items()
        }

    def test_k_calls_pay_one_crossing(self):
        platform, enclave = _fresh_enclave(b"amortize")
        before = platform.accountant.snapshot()
        results = enclave.ecall_batch([("add", (i,), {}) for i in range(1, 6)])
        assert results == [1, 3, 6, 10, 15]
        delta = platform.accountant.delta(before)[enclave.domain]
        assert delta.enclave_crossings == 1

    def test_batch_results_match_sequential_ecalls(self):
        p_seq, e_seq = _fresh_enclave(b"seq")
        p_bat, e_bat = _fresh_enclave(b"bat")
        sequential = [e_seq.ecall("add", i) for i in range(1, 9)]
        batched = e_bat.ecall_batch([("add", (i,), {}) for i in range(1, 9)])
        assert batched == sequential
        # The amortization is real: strictly fewer crossings.
        seq_cross = p_seq.accountant.total().enclave_crossings
        bat_cross = p_bat.accountant.total().enclave_crossings
        assert bat_cross < seq_cross

    def test_empty_batch_rejected(self):
        _platform, enclave = _fresh_enclave(b"empty")
        with pytest.raises(SgxError, match="empty"):
            enclave.ecall_batch([])

    def test_failing_handler_aborts_batch(self):
        _platform, enclave = _fresh_enclave(b"abort")
        with pytest.raises(ValueError, match="handler failure"):
            enclave.ecall_batch([("add", (1,), {}), ("boom", (), {})])
        # Partial results are discarded but state mutations before the
        # failure stand (same semantics as sequential ecalls).
        assert enclave.ecall("add", 0) == 1

    def test_batch_respects_export_rules(self):
        _platform, enclave = _fresh_enclave(b"export")
        with pytest.raises(Exception):
            enclave.ecall_batch([("_hidden", (), {})])


class TestRecordBatch:
    def test_encode_decode_roundtrip(self):
        for messages in ([], [b""], [b"a"], [b"a", b"bb", b"", b"ccc" * 100]):
            assert decode_record_batch(encode_record_batch(messages)) == messages

    def _pair(self):
        keys = SessionKeys.derive(b"batch-secret", b"\x01" * 32)
        return (
            SecureRecordChannel(keys, "initiator"),
            SecureRecordChannel(keys, "responder"),
        )

    def test_protect_many_roundtrip(self):
        tx, rx = self._pair()
        messages = [b"alpha", b"", b"gamma" * 50]
        assert rx.open_many(tx.protect_many(messages)) == messages

    def test_batch_and_single_records_interleave(self):
        """One batch consumes one sequence number: plain records keep
        flowing on the same channel afterwards."""
        tx, rx = self._pair()
        assert rx.open_many(tx.protect_many([b"one", b"two"])) == [b"one", b"two"]
        assert rx.open(tx.protect(b"three")) == b"three"
        assert rx.open_many(tx.protect_many([b"four"])) == [b"four"]

    def test_tampered_batch_rejected(self):
        tx, rx = self._pair()
        record = bytearray(tx.protect_many([b"payload"]))
        record[-1] ^= 0x01
        with pytest.raises(ProtocolError):
            rx.open_many(bytes(record))
