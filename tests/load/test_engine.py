"""The load engine: determinism, report schema, exact reconciliation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ReproError
from repro.load.clients import event_log_fingerprint, generate_events
from repro.load.engine import LOAD_SCENARIOS, run_load_engine
from repro.load.report import SCHEMA, bench_doc, bench_json, validate_bench
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.messages import encode_routes_msg


class TestEventGeneration:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_clients=st.integers(min_value=1, max_value=50),
        n_events=st.integers(min_value=1, max_value=80),
    )
    def test_same_seed_same_event_log(self, seed, n_clients, n_events):
        keys = list(range(1, 20))
        first = generate_events("routing", n_clients, n_events, keys, seed)
        second = generate_events("routing", n_clients, n_events, keys, seed)
        assert event_log_fingerprint(first) == event_log_fingerprint(second)
        assert [e.as_dict() for e in first] == [e.as_dict() for e in second]

    def test_different_seeds_differ(self):
        keys = list(range(1, 20))
        a = generate_events("routing", 10, 50, keys, seed=0)
        b = generate_events("routing", 10, 50, keys, seed=1)
        assert event_log_fingerprint(a) != event_log_fingerprint(b)

    def test_arrivals_are_open_loop_and_monotone(self):
        events = generate_events("routing", 5, 60, [1, 2, 3], seed=7)
        arrivals = [e.arrival for e in events]
        assert arrivals == sorted(arrivals)
        assert all(e.seq == i for i, e in enumerate(events))

    def test_bad_arguments_rejected(self):
        with pytest.raises(ReproError):
            generate_events("routing", 0, 1, [1], seed=0)
        with pytest.raises(ReproError):
            generate_events("routing", 1, 0, [1], seed=0)
        with pytest.raises(ReproError):
            generate_events("routing", 1, 1, [], seed=0)
        with pytest.raises(ReproError):
            generate_events("no-such-scenario", 1, 1, [1], seed=0)


class TestDeterminism:
    def test_bench_json_byte_identical_across_runs(self):
        kwargs = dict(n_clients=40, n_shards=2, batch=4, seed=3)
        first = bench_json(run_load_engine("routing", **kwargs))
        second = bench_json(run_load_engine("routing", **kwargs))
        assert first == second

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError):
            run_load_engine("bogus", n_clients=1, n_shards=1, batch=1, seed=0)


class TestReport:
    def _doc(self):
        result = run_load_engine("routing", n_clients=30, n_shards=2, batch=4, seed=0)
        return bench_doc(result)

    def test_generated_doc_validates(self):
        doc = self._doc()
        assert validate_bench(doc) == []
        assert doc["schema"] == SCHEMA
        # The canonical file form parses back to the same document.
        result = run_load_engine("routing", n_clients=30, n_shards=2, batch=4, seed=0)
        assert json.loads(bench_json(result)) == doc

    def test_validation_catches_missing_and_wrong(self):
        doc = self._doc()
        broken = dict(doc)
        del broken["crossings"]
        assert any("crossings" in p for p in validate_bench(broken))

        wrong_schema = dict(doc, schema="repro.load/99")
        assert any("schema" in p for p in validate_bench(wrong_schema))

        bad_sum = dict(doc, outcomes={"ok": 1})
        assert any("sum" in p for p in validate_bench(bad_sum))

        bad_class = dict(doc, outcomes={"mystery": doc["throughput"]["events"]})
        assert any("mystery" in p for p in validate_bench(bad_class))

        with pytest.raises(ReproError):
            validate_bench([1, 2, 3])


class TestEquivalence:
    def test_served_routes_match_unsharded_controller(self):
        """Every reply the sharded, batched, enclave-hosted deployment
        serves is byte-identical to the plain in-process controller's
        answer for the same AS (ISSUE acceptance gate)."""
        result = run_load_engine(
            "routing", n_clients=12, n_shards=2, batch=4, seed=1,
            n_events=16, keep_payloads=True,
        )
        _topology, policies = build_policies(24, b"load-routing-1")
        reference = InterDomainController()
        for policy in policies.values():
            reference.submit_policy(policy)
        reference.compute_routes()

        checked = 0
        for record in result.events:
            assert record.outcome == "ok"
            payload = result.payloads[record.seq]
            assert payload == encode_routes_msg(reference.routes_for(record.key))
            checked += 1
        assert checked == 16

    def test_reconcile_exact_on_traced_run(self):
        """S=1/K=1 under the tracer reconciles integer-for-integer
        against the cost accountants (obs.reconcile raises otherwise)."""
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            run_load_engine(
                "routing", n_clients=8, n_shards=1, batch=1, seed=0, n_events=8
            )
        assert obs.reconcile(tracer)  # non-empty per-domain breakdown


class TestScenarios:
    def test_scenario_registry(self):
        assert LOAD_SCENARIOS == ("middlebox", "routing", "tor")

    def test_tor_scenario_serves_events(self):
        result = run_load_engine("tor", n_clients=4, n_shards=1, batch=2,
                                 seed=0, n_events=4)
        assert sum(result.outcomes.values()) == 4
        assert result.outcomes.get("ok") == 4

    def test_middlebox_scenario_serves_events(self):
        result = run_load_engine("middlebox", n_clients=3, n_shards=1, batch=2,
                                 seed=0, n_events=3)
        assert sum(result.outcomes.values()) == 3
        assert result.outcomes.get("ok") == 3
