"""Parallel load replay is byte-identical to the serial oracle.

The serial :class:`~repro.load.engine.LoadEngine` defines the answer;
:func:`~repro.load.parallel.run_load_parallel` must reproduce its
``BENCH_load.json`` *byte-for-byte* at every worker count (satellite
c).  The worker-count sweeps here run real multi-process replays, so
they also exercise the fast-forward path that keeps per-worker channel
state (sequence numbers, CTR keystream position) aligned with the
serial interleaving.
"""

import pytest

from repro import faults
from repro.errors import ReproError
from repro.load.engine import (
    default_n_events,
    plan_dispatches,
    population_keys,
    run_load_engine,
)
from repro.load.clients import generate_events
from repro.load.parallel import run_load_parallel
from repro.load.report import bench_json

ROUTING_KW = dict(n_clients=60, n_shards=2, batch=4, seed=0)


def _serial(scenario, **kwargs):
    return bench_json(run_load_engine(scenario, **kwargs))


def _parallel(scenario, workers, **kwargs):
    return bench_json(run_load_parallel(scenario, workers=workers, **kwargs))


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_routing_matches_serial(self, workers):
        serial = _serial("routing", **ROUTING_KW)
        assert _parallel("routing", workers, **ROUTING_KW) == serial

    def test_routing_three_shards(self):
        kwargs = dict(n_clients=45, n_shards=3, batch=4, seed=7)
        assert _parallel("routing", 3, **kwargs) == _serial("routing", **kwargs)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_middlebox_matches_serial(self, workers):
        kwargs = dict(n_clients=40, n_shards=2, batch=4, seed=1)
        assert _parallel("middlebox", workers, **kwargs) == _serial(
            "middlebox", **kwargs
        )

    def test_tor_falls_back_to_serial(self):
        # Tor couples consensus validity to the global clock, so the
        # parallel runner must refuse to partition it — and still
        # return the serial answer.
        kwargs = dict(n_clients=12, n_shards=1, batch=2, seed=0)
        assert _parallel("tor", 4, **kwargs) == _serial("tor", **kwargs)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_cohort_cache_composes_with_workers(self, workers):
        # --workers x --cohorts: each worker replays repeat dispatches
        # from its private cohort cache; the merged report must still
        # be the serial per-client engine's, byte for byte.
        serial = _serial("routing", **ROUTING_KW)
        parallel = bench_json(
            run_load_parallel(
                "routing", workers=workers, cohorts=True, **ROUTING_KW
            )
        )
        assert parallel == serial

    def test_cohorts_with_regions_falls_back_serially(self):
        # A hierarchical tree relays through region heads, so its
        # charges are interleaving-dependent: the runner must refuse
        # to partition it and serve the cohort-tier answer instead.
        kwargs = dict(n_clients=30, n_shards=4, batch=2, seed=0)
        serial = bench_json(run_load_engine("routing", regions=2, **kwargs))
        parallel = bench_json(
            run_load_parallel(
                "routing", workers=3, cohorts=True, regions=2, **kwargs
            )
        )
        assert parallel == serial

    def test_deterministic_fault_plan_replays_in_parallel(self):
        # A capped rate-1.0 shard_crash plan is parallel-safe: every
        # worker fault-forwards foreign dispatches, so crash decisions
        # replay identically and the merged result (and the fault log
        # replayed into the caller's plan) match the serial oracle.
        kwargs = dict(n_clients=30, n_shards=2, batch=4, seed=0)
        # Fresh plan per arm: plans consume decisions as they fire.
        parallel_plan = faults.matrix_plan("shard_crash", 3)
        with faults.active(parallel_plan):
            parallel = _parallel("routing", 2, **kwargs)
        serial_plan = faults.matrix_plan("shard_crash", 3)
        with faults.active(serial_plan):
            serial = _serial("routing", **kwargs)
        assert parallel == serial
        assert parallel_plan.log.digest() == serial_plan.log.digest()
        assert parallel_plan._fired == serial_plan._fired
        assert len(parallel_plan.log) == 1

    def test_probabilistic_fault_plan_falls_back_to_serial(self):
        # Probabilistic rules consume shared RNG draws, so replicas
        # cannot replay decisions independently: the runner must
        # refuse to partition and still return the serial answer.
        kwargs = dict(n_clients=20, n_shards=2, batch=4, seed=0)
        rules = [faults.FaultRule(faults.SHARD_CRASH, rate=0.5, max_count=1)]
        with faults.active(faults.FaultPlan(11, rules)):
            parallel = _parallel("routing", 2, **kwargs)
        with faults.active(faults.FaultPlan(11, rules)):
            serial = _serial("routing", **kwargs)
        assert parallel == serial

    def test_uncapped_fault_plan_falls_back_to_serial(self):
        # Without max_count the plan never exhausts, so fault-forward
        # can't downgrade — the gate must route this to the serial
        # engine rather than risk divergence.
        kwargs = dict(n_clients=20, n_shards=2, batch=4, seed=0)
        rules = [faults.FaultRule(faults.SHARD_CRASH, rate=1.0)]
        with faults.active(faults.FaultPlan(5, rules)):
            parallel = _parallel("routing", 2, **kwargs)
        with faults.active(faults.FaultPlan(5, rules)):
            serial = _serial("routing", **kwargs)
        assert parallel == serial


class TestPlanHelpers:
    def test_population_keys_match_backend(self):
        from repro.load.engine import _BACKENDS

        for scenario in ("routing", "tor", "middlebox"):
            backend = _BACKENDS[scenario](1, 1, 24, 0)
            assert population_keys(scenario, 24, 0) == backend.keys()

    def test_population_keys_unknown_scenario(self):
        with pytest.raises(ReproError):
            population_keys("bogus", 24, 0)

    def test_plan_covers_every_event_once(self):
        events = generate_events(
            "routing", 50, default_n_events("routing", 50),
            population_keys("routing", 24, 0), 0,
        )
        plan = plan_dispatches(events, n_slots=3, batch=4)
        dispatched = [e for _, batch_events in plan for e in batch_events]
        assert sorted(id(e) for e in dispatched) == sorted(id(e) for e in events)
        assert all(len(batch_events) <= 4 for _, batch_events in plan)

    def test_worker_count_validation(self):
        with pytest.raises(ReproError):
            run_load_parallel("routing", workers=0, **ROUTING_KW)
        with pytest.raises(ReproError):
            run_load_parallel("bogus", workers=1, **ROUTING_KW)

    def test_oversubscribed_workers_clamp(self):
        kwargs = dict(n_clients=6, n_shards=1, batch=8, seed=0)
        assert _parallel("routing", 64, **kwargs) == _serial("routing", **kwargs)


class TestKernelAndReplayDifferential:
    """Satellite (b): BENCH_load.json is byte-identical under the old
    kernel, the new kernel, and the new kernel with parallel traced /
    fault-injected replay — for seeds 0 and 1."""

    KW = dict(n_clients=30, n_shards=2, batch=4)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bench_load_bytes_across_kernels_and_replay(self, seed):
        from repro.cost import accountant as accountant_mod
        from repro.net.sim import use_kernel
        from repro.obs.export import reconcile
        from repro.obs.tracer import Tracer

        kwargs = dict(self.KW, seed=seed)
        fast_serial = _serial("routing", **kwargs)
        with use_kernel("reference"):
            reference_serial = _serial("routing", **kwargs)
        assert reference_serial == fast_serial

        # Parallel replay with a live tracer: same bytes, and the
        # absorbed worker traces reconcile exactly against the parent
        # tracer's ghost accountants (integer identity, no tolerance).
        tracer = Tracer()
        prior = accountant_mod.set_active_tracer(tracer)
        try:
            traced_parallel = _parallel("routing", 2, **kwargs)
        finally:
            accountant_mod.set_active_tracer(prior)
        assert traced_parallel == fast_serial
        reconcile(tracer)  # raises ReconcileError on any drift

        # Parallel fault replay: same bytes as the serial run under an
        # identical fresh plan, and the same injected-fault log.
        parallel_plan = faults.matrix_plan("shard_crash", seed + 2)
        with faults.active(parallel_plan):
            fault_parallel = _parallel("routing", 2, **kwargs)
        serial_plan = faults.matrix_plan("shard_crash", seed + 2)
        with faults.active(serial_plan):
            fault_serial = _serial("routing", **kwargs)
        assert fault_parallel == fault_serial
        assert parallel_plan.log.digest() == serial_plan.log.digest()

    def test_traced_fault_parallel_replay_reconciles(self):
        from repro.cost import accountant as accountant_mod
        from repro.obs.export import reconcile
        from repro.obs.tracer import Tracer

        kwargs = dict(self.KW, seed=0)
        with faults.active(faults.matrix_plan("shard_crash", 2)):
            serial = _serial("routing", **kwargs)
        tracer = Tracer()
        prior = accountant_mod.set_active_tracer(tracer)
        try:
            with faults.active(faults.matrix_plan("shard_crash", 2)):
                parallel = _parallel("routing", 2, **kwargs)
        finally:
            accountant_mod.set_active_tracer(prior)
        assert parallel == serial
        reconcile(tracer)
