"""Weighted latency statistics vs the brute-force expansion oracle.

The cohort tier stores latencies as sorted ``(value, count)`` pairs;
:func:`repro.load.report.weighted_mean` and
:func:`repro.load.report.weighted_percentile` must return *bit-for-bit*
the floats the per-client path computes over the expanded list — not
merely close, because the BENCH report is diffed byte-wise.  The
oracle here is the literal expansion: repeat each value ``count``
times, then run the per-client arithmetic (repeated adds in sorted
order for the mean, ceil-rank indexing for percentiles).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.report import weighted_mean, weighted_percentile

_values = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
_samples = st.lists(
    st.tuples(_values, st.integers(min_value=1, max_value=9)),
    min_size=1,
    max_size=40,
).map(lambda pairs: sorted(dict(pairs).items()))


def _expand(samples):
    out = []
    for value, count in samples:
        out.extend([value] * count)
    return out


def _oracle_mean(expanded):
    total = 0.0
    for value in expanded:  # identical add order to the per-client path
        total += value
    return total / len(expanded)


def _oracle_percentile(expanded, p):
    rank = min(max(1, -(-int(p * len(expanded)) // 100)), len(expanded))
    return expanded[rank - 1]


class TestWeightedOracle:
    @settings(max_examples=200, deadline=None)
    @given(samples=_samples)
    def test_mean_bit_identical_to_expansion(self, samples):
        assert weighted_mean(samples) == _oracle_mean(_expand(samples))

    @settings(max_examples=200, deadline=None)
    @given(samples=_samples, p=st.integers(min_value=0, max_value=100))
    def test_percentile_bit_identical_to_expansion(self, samples, p):
        assert weighted_percentile(samples, p) == _oracle_percentile(
            _expand(samples), p
        )

    def test_empty_samples(self):
        assert weighted_mean([]) == 0.0
        assert weighted_percentile([], 99) == 0.0

    @pytest.mark.parametrize("p", [0, 50, 90, 99, 100])
    def test_single_value(self, p):
        assert weighted_percentile([(7.5, 3)], p) == 7.5
        assert weighted_mean([(7.5, 3)]) == 7.5

    def test_counts_shift_the_rank(self):
        # 1 copy of 10.0, 99 copies of 20.0: p50 and p99 both land in
        # the heavy bucket; p1 lands in the light one.
        samples = [(10.0, 1), (20.0, 99)]
        assert weighted_percentile(samples, 1) == 10.0
        assert weighted_percentile(samples, 50) == 20.0
        assert weighted_percentile(samples, 99) == 20.0


class TestEngineIntegration:
    def test_load_result_percentiles_match_both_paths(self):
        from repro.load.engine import run_load_engine

        result = run_load_engine("routing", 30, 2, 4, 0)
        expanded = sorted(r.latency_cycles for r in result.events)
        for p in (50, 90, 99):
            assert result.percentile(p) == _oracle_percentile(expanded, p)
