"""Sharding invariants: ownership, byte-equality, exact S=1 cost parity."""

import pytest

from repro.cost import CostAccountant
from repro.cost import context as cost_context
from repro.errors import ShardError
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.messages import encode_routes_msg
from repro.routing.sharding import (
    ShardCore,
    ShardRing,
    ShardedInterDomainController,
)


def _unsharded(policies):
    ctrl = InterDomainController()
    for policy in policies.values():
        ctrl.submit_policy(policy)
    ctrl.compute_routes()
    return ctrl


def _sharded(policies, n_shards):
    ctrl = ShardedInterDomainController(n_shards)
    for policy in policies.values():
        ctrl.submit_policy(policy)
    ctrl.seal()
    return ctrl


class TestRing:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_every_as_owned_by_exactly_one_shard(self, n_shards):
        ring = ShardRing(list(range(n_shards)))
        asns = list(range(1, 41))
        partition = ring.partition(asns)
        assert sorted(partition) == list(range(n_shards))
        flattened = [asn for owned in partition.values() for asn in owned]
        assert sorted(flattened) == asns           # no AS lost
        assert len(flattened) == len(set(flattened))  # no AS duplicated
        for shard_id, owned in partition.items():
            for asn in owned:
                assert ring.owner(asn) == shard_id

    def test_owner_is_deterministic_across_rings(self):
        a = ShardRing([0, 1, 2, 3])
        b = ShardRing([0, 1, 2, 3])
        assert all(a.owner(asn) == b.owner(asn) for asn in range(1, 100))

    def test_removal_rehomes_only_the_dead_shards_ases(self):
        ring = ShardRing([0, 1, 2, 3])
        asns = list(range(1, 60))
        before = {asn: ring.owner(asn) for asn in asns}
        ring.remove_shard(2)
        for asn in asns:
            after = ring.owner(asn)
            if before[asn] == 2:
                assert after != 2          # re-homed onto a survivor
            else:
                assert after == before[asn]  # everyone else undisturbed

    def test_ring_rejects_bad_configurations(self):
        with pytest.raises(ShardError):
            ShardRing([])
        with pytest.raises(ShardError):
            ShardRing([0, 0])
        ring = ShardRing([0])
        with pytest.raises(ShardError):
            ring.add_shard(0)
        with pytest.raises(ShardError):
            ring.remove_shard(0)           # never remove the last shard
        with pytest.raises(ShardError):
            ring.remove_shard(7)


class TestByteEquality:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_sharded_answers_equal_unsharded_byte_for_byte(self, n_shards):
        _topology, policies = build_policies(18, b"shard-eq")
        reference = _unsharded(policies)
        sharded = _sharded(policies, n_shards)
        for asn in policies:
            expect = encode_routes_msg(reference.routes_for(asn))
            assert encode_routes_msg(sharded.routes_for(asn)) == expect

    def test_cross_shard_front_returns_identical_bytes(self):
        _topology, policies = build_policies(14, b"shard-front")
        reference = _unsharded(policies)
        sharded = _sharded(policies, 4)
        for asn in policies:
            expect = encode_routes_msg(reference.routes_for(asn))
            for front in sharded.ring.shard_ids:
                got = sharded.routes_for(asn, via_shard=front)
                assert encode_routes_msg(got) == expect

    def test_failover_preserves_byte_equality(self):
        _topology, policies = build_policies(16, b"shard-fail")
        reference = _unsharded(policies)
        sharded = _sharded(policies, 4)
        rehomed = sharded.fail_shard(2)
        assert rehomed                      # the dead shard owned something
        for asn in policies:
            expect = encode_routes_msg(reference.routes_for(asn))
            assert encode_routes_msg(sharded.routes_for(asn)) == expect
        with pytest.raises(ShardError):
            sharded.fail_shard(2)           # already dead


class TestCostParity:
    def test_single_shard_counters_match_unsharded_exactly(self):
        """S=1 must cost what the unsharded controller costs — integer
        for integer, not approximately (ISSUE acceptance gate)."""
        _topology, policies = build_policies(15, b"shard-cost")

        ref_acct = CostAccountant()
        with cost_context.use_accountant(ref_acct):
            reference = _unsharded(policies)
            for asn in sorted(policies):
                reference.routes_for(asn)

        one_acct = CostAccountant()
        with cost_context.use_accountant(one_acct):
            sharded = _sharded(policies, 1)
            for asn in sorted(policies):
                sharded.routes_for(asn)

        assert one_acct.total().as_dict() == ref_acct.total().as_dict()

    def test_multi_shard_charges_inter_shard_wire_work(self):
        _topology, policies = build_policies(15, b"shard-cost")
        one = CostAccountant()
        with cost_context.use_accountant(one):
            _sharded(policies, 1)
        four = CostAccountant()
        with cost_context.use_accountant(four):
            _sharded(policies, 4)
        assert (
            four.total().normal_instructions > one.total().normal_instructions
        )


class TestAdoption:
    def test_adopt_requires_byte_identical_policy(self):
        _topology, policies = build_policies(10, b"shard-adopt")
        asn = sorted(policies)[0]
        core = ShardCore(0)
        core.submit_policy(policies[asn])
        other = sorted(policies)[1]
        with pytest.raises(ShardError):
            core.adopt(asn, policies[other].encode())
        core.adopt(asn, policies[asn].encode())   # identical bytes: fine
        assert asn in core.owned
