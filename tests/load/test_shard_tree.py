"""The two-level shard tree: region ring over per-region shard rings.

Three promises, each pinned here:

* **parity** — a one-region :class:`~repro.routing.sharding.ShardTree`
  owns every key exactly as the flat
  :class:`~repro.routing.sharding.ShardRing` does, and the
  single-shard hierarchical deployment charges *integer-exactly* what
  the flat deployment charges (the tree is free until it relays);
* **relaying** — a hierarchical deployment answers every request with
  the same route bytes the flat deployment computes, even when the
  front shard has no direct session to the owner and the query hops
  through region heads;
* **failover** — crashing a region head (or emptying a region) elects
  a successor, re-establishes head-head sessions, re-pushes relay
  routes and re-homes the lost ASes: afterwards *every* AS is still
  serveable with correct bytes — nothing is silently lost.
"""

import pytest

from repro.errors import ShardError
from repro.load.engine import run_load_engine
from repro.load.shards import ShardedRoutingDeployment
from repro.routing.sharding import ShardRing, ShardTree


class TestTreeRingParity:
    def test_single_region_tree_matches_flat_ring(self):
        members = [0, 1, 2, 3]
        ring = ShardRing(list(members))
        tree = ShardTree({0: list(members)})
        for key in range(2000):
            assert tree.owner(key) == ring.owner(key)

    def test_single_region_parity_survives_removal(self):
        members = [0, 1, 2, 3]
        ring = ShardRing(list(members))
        tree = ShardTree({0: list(members)})
        ring.remove_shard(2)
        tree.remove_shard(2)
        for key in range(2000):
            assert tree.owner(key) == ring.owner(key)

    def test_owner_lands_in_owning_region(self):
        regions = {0: [0, 2, 4], 1: [1, 3, 5]}
        tree = ShardTree({r: list(m) for r, m in regions.items()})
        by_shard = {s: r for r, members in regions.items() for s in members}
        seen_regions = set()
        for key in range(2000):
            owner = tree.owner(key)
            seen_regions.add(by_shard[owner])
        assert seen_regions == {0, 1}  # both regions actually own keys

    def test_deterministic_across_instances(self):
        a = ShardTree({0: [0, 1], 1: [2, 3]})
        b = ShardTree({0: [0, 1], 1: [2, 3]})
        assert [a.owner(k) for k in range(500)] == [
            b.owner(k) for k in range(500)
        ]

    def test_emptied_region_leaves_region_ring(self):
        tree = ShardTree({0: [0], 1: [1, 2]})
        tree.remove_shard(0)
        owners = {tree.owner(k) for k in range(500)}
        assert owners <= {1, 2}


def _serve_all(dep, front):
    requests = [
        (i, asn, "route_request")
        for i, asn in enumerate(sorted(dep.topology.asns))
    ]
    return dep.serve_batch(front, requests)


class TestHierarchicalDeployment:
    def _deployments(self, n_shards=6, regions=3, seed=b"tree-test"):
        flat = ShardedRoutingDeployment(n_shards, n_ases=20, seed=seed)
        tree = ShardedRoutingDeployment(
            n_shards, n_ases=20, seed=seed, regions=regions
        )
        for dep in (flat, tree):
            dep.register_all()
            dep.seal()
        return flat, tree

    def test_relayed_answers_match_flat(self):
        flat, tree = self._deployments()
        # front 5 is a region member (not a head): every cross-region
        # query must relay through its head, yet the route bytes must
        # be exactly what the flat all-pairs deployment computes.
        assert _serve_all(tree, 5) == _serve_all(flat, 5)

    def test_head_crash_elects_successor_and_loses_nothing(self):
        flat, tree = self._deployments()
        # shard 0 is region 0's head (lowest id).
        flat.crash_shard(0)
        tree.crash_shard(0)
        assert 3 in tree._heads()  # successor: next lowest in region 0
        served_tree = _serve_all(tree, 5)
        served_flat = _serve_all(flat, 5)
        assert set(served_tree) == set(served_flat) == set(range(20))
        assert served_tree == served_flat

    def test_emptying_a_region_reroutes_its_keys(self):
        flat, tree = self._deployments(n_shards=4, regions=4)
        flat.crash_shard(3)
        tree.crash_shard(3)
        assert _serve_all(tree, 1) == _serve_all(flat, 1)

    def test_crashing_every_shard_but_one_still_serves(self):
        _, tree = self._deployments(n_shards=4, regions=2)
        for shard in (0, 1, 2):
            tree.crash_shard(shard)
        served = _serve_all(tree, 3)
        assert set(served) == set(range(20))

    def test_dead_front_raises_instead_of_silent_loss(self):
        _, tree = self._deployments(n_shards=4, regions=2)
        tree.crash_shard(2)
        with pytest.raises(ShardError):
            tree.serve_batch(2, [(0, 1, "route_request")])


class TestCostParity:
    """A degenerate tree (one shard, one region) must be *free*: the
    relay machinery only charges when a payload actually hops."""

    def test_single_shard_integer_exact(self):
        flat = run_load_engine("routing", 30, 1, 4, 0)
        tree = run_load_engine("routing", 30, 1, 4, 0, regions=1)
        assert tree.steady_counters == flat.steady_counters
        assert tree.shard_stats == flat.shard_stats
        assert tree.makespan_cycles == flat.makespan_cycles
        assert tree.setup_cycles == flat.setup_cycles
        assert tree.outcomes == flat.outcomes

    def test_one_region_many_shards_matches_flat(self):
        # R=1 collapses to all-pairs sessions and an identical ring:
        # the whole run must be integer-exact, not just close.
        flat = run_load_engine("routing", 30, 3, 2, 1)
        tree = run_load_engine("routing", 30, 3, 2, 1, regions=1)
        assert tree.steady_counters == flat.steady_counters
        assert tree.shard_stats == flat.shard_stats
        assert tree.makespan_cycles == flat.makespan_cycles
