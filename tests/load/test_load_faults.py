"""The load engine under deterministic fault injection (shard crashes).

Extends the fault matrix (``repro.faults``) to the scale-out layer:
a seeded plan kills a controller shard mid-run, the deployment
re-homes its ASes onto survivors, clients re-register, and — the
property that matters — no request is ever *silently* lost: every
event ends in exactly one of ``ok``/``recovered``/``failed``.
"""

import pytest

from repro import faults
from repro.load.engine import run_load_engine
from repro.load.report import validate_bench, bench_doc
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies
from repro.routing.messages import encode_routes_msg


def _run_with_crash(seed, n_shards=2, n_events=60):
    plan = faults.matrix_plan("shard_crash", seed)
    with faults.active(plan):
        result = run_load_engine(
            "routing",
            n_clients=20,
            n_shards=n_shards,
            batch=4,
            seed=seed,
            n_events=n_events,
            keep_payloads=True,
        )
    return result, plan


class TestShardCrashFailover:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_request_silently_lost(self, seed):
        result, plan = _run_with_crash(seed)
        assert plan.log.events, "the plan never fired — test proves nothing"
        assert sum(result.outcomes.values()) == len(result.events) == 60
        assert set(result.outcomes) <= {"ok", "recovered", "failed"}
        # Two shards: the survivor adopts, so nothing may hard-fail.
        assert "failed" not in result.outcomes
        assert result.outcomes.get("recovered", 0) >= 1

    @pytest.mark.parametrize("seed", [0, 1])
    def test_failover_rehomes_and_stays_correct(self, seed):
        result, _plan = _run_with_crash(seed)
        rehomed = sum(
            stats.get("rehomed_ases", 0) for stats in result.shard_stats.values()
        )
        assert rehomed > 0

        # Served answers — including post-failover ones — still match
        # the unsharded controller byte for byte.
        _topology, policies = build_policies(24, b"load-routing-%d" % seed)
        reference = InterDomainController()
        for policy in policies.values():
            reference.submit_policy(policy)
        reference.compute_routes()
        for record in result.events:
            payload = result.payloads[record.seq]
            assert payload == encode_routes_msg(reference.routes_for(record.key))

    def test_crash_report_still_validates(self):
        result, _plan = _run_with_crash(0)
        assert validate_bench(bench_doc(result)) == []

    def test_single_shard_crash_fails_loudly(self):
        """With S=1 there is nowhere to re-home: remaining events are
        reported as failed — never dropped, never fabricated."""
        result, plan = _run_with_crash(0, n_shards=1, n_events=40)
        assert plan.log.events
        assert sum(result.outcomes.values()) == len(result.events) == 40
        assert result.outcomes.get("failed", 0) >= 1
        for record in result.events:
            if record.outcome == "failed":
                assert record.reply_digest == ""

    def test_plan_is_deterministic(self):
        first, _ = _run_with_crash(0)
        second, _ = _run_with_crash(0)
        assert first.outcomes == second.outcomes
        assert [r.outcome for r in first.events] == [
            r.outcome for r in second.events
        ]


class TestMatrixIntegration:
    def test_shard_crash_is_a_registered_class(self):
        assert "shard_crash" in faults.FAULT_CLASSES
        plan = faults.matrix_plan("shard_crash", 0)
        assert plan.decide(faults.SHARD_CRASH, "shard:0") is not None
        # max_count=1: the second opportunity must not fire.
        assert plan.decide(faults.SHARD_CRASH, "shard:1") is None

    def test_other_fault_classes_leave_load_unaffected(self):
        """A network-fault plan has no instrumented sites in the load
        path's direct shuttling — the run completes clean."""
        plan = faults.matrix_plan("drop", 0)
        with faults.active(plan):
            result = run_load_engine(
                "routing", n_clients=10, n_shards=2, batch=4, seed=0, n_events=20
            )
        assert result.outcomes == {"ok": 20}
