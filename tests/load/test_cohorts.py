"""The cohort <-> per-client equivalence suite (the cohort tier's gate).

The cohort tier (:mod:`repro.load.cohorts`) is only allowed to be an
optimization: for *every* configuration its ``BENCH_load.json`` must
be byte-identical to the per-client engine's — which, because the
document embeds the steady counters, per-shard stats, outcome tallies
and the event-log fingerprint, also pins the accountants
integer-for-integer.  Hypothesis drives randomized configurations
across all three scenarios, flat and two-level shard trees; a pinned
grid covers the seeds/batches CI promises explicitly; a lock-step walk
compares accountant snapshots after every dispatch, not just at the
end.

Budget: ``REPRO_CONFORMANCE_EXAMPLES`` scales the generated-config
count (default 25 for tier-1 speed; nightly raises it).  A falsified
configuration is dumped to ``conformance-failures/`` as JSON — the
config plus both documents — so CI uploads it as an artifact.
"""

import json
import os
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cost.accountant import CostAccountant
from repro.load.clients import generate_events, streaming_fingerprint
from repro.load.cohorts import CohortLoadEngine, _CohortCache, run_load_cohorts
from repro.load.engine import (
    LoadEngine,
    make_backend,
    plan_dispatches,
    run_load_engine,
)
from repro.load.parallel import run_load_parallel
from repro.load.report import bench_json, validate_bench

EXAMPLES = int(os.environ.get("REPRO_CONFORMANCE_EXAMPLES", "25"))
FAILURE_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "conformance-failures"
)


def _dump_failure(config: dict, cohort_text: str, client_text: str) -> str:
    FAILURE_DIR.mkdir(exist_ok=True)
    slug = "-".join(f"{k}{v}" for k, v in sorted(config.items()))
    path = FAILURE_DIR / f"cohort-equiv-{slug}.json"
    path.write_text(
        json.dumps(
            {
                "config": config,
                "cohort": json.loads(cohort_text),
                "per_client": json.loads(client_text),
            },
            indent=2,
            sort_keys=True,
        )
    )
    return str(path)


def assert_equivalent(
    scenario: str,
    clients: int,
    shards: int,
    batch: int,
    seed: int,
    regions=None,
) -> str:
    """Run both tiers; byte-compare the reports.  Returns the text."""
    cohort = run_load_cohorts(
        scenario, clients, shards, batch, seed, regions=regions
    )
    client = run_load_engine(
        scenario, clients, shards, batch, seed, regions=regions
    )
    cohort_text = bench_json(cohort)
    client_text = bench_json(client)
    if cohort_text != client_text:
        config = {
            "scenario": scenario, "clients": clients, "shards": shards,
            "batch": batch, "seed": seed, "regions": regions,
        }
        path = _dump_failure(config, cohort_text, client_text)
        pytest.fail(
            f"cohort tier diverged from per-client replay for {config}; "
            f"both documents dumped to {path}"
        )
    assert validate_bench(json.loads(cohort_text)) == []
    assert cohort.steady_counters == client.steady_counters
    assert cohort.shard_stats == client.shard_stats
    assert cohort.outcomes == client.outcomes
    return cohort_text


class TestPinnedGrid:
    """The explicit configurations CI promises, beyond the random sweep."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("batch", [1, 4])
    def test_routing(self, seed, batch):
        assert_equivalent("routing", 40, 3, batch, seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_tor(self, seed):
        assert_equivalent("tor", 24, 2, 4, seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_middlebox(self, seed):
        assert_equivalent("middlebox", 24, 2, 4, seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_routing_two_level_tree(self, seed):
        assert_equivalent("routing", 40, 4, 2, seed, regions=2)

    def test_single_shard(self):
        assert_equivalent("routing", 30, 1, 4, 0)

    def test_unbatched_tree(self):
        assert_equivalent("routing", 30, 6, 1, 0, regions=3)


class TestParallelComposition:
    """``--workers`` and ``--cohorts`` compose byte-identically."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_routing_workers(self, workers):
        serial = bench_json(run_load_engine("routing", 40, 3, 4, 1))
        parallel = bench_json(
            run_load_parallel(
                "routing", 40, 3, 4, 1, workers=workers, cohorts=True
            )
        )
        assert parallel == serial

    def test_regions_forces_serial_cohort_fallback(self):
        serial = bench_json(run_load_engine("routing", 30, 4, 2, 0, regions=2))
        parallel = bench_json(
            run_load_parallel(
                "routing", 30, 4, 2, 0, workers=3, cohorts=True, regions=2
            )
        )
        assert parallel == serial


CONFIGS = st.fixed_dictionaries(
    {
        "scenario": st.sampled_from(["routing", "tor", "middlebox"]),
        "clients": st.integers(min_value=4, max_value=36),
        "shards": st.integers(min_value=1, max_value=4),
        "batch": st.sampled_from([1, 2, 4, 8]),
        "seed": st.integers(min_value=0, max_value=3),
        "tree": st.booleans(),
    }
)


class TestRandomizedEquivalence:
    @settings(
        max_examples=EXAMPLES,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=CONFIGS)
    def test_cohort_report_matches_per_client(self, config):
        regions = (
            2
            if config["tree"]
            and config["scenario"] == "routing"
            and config["shards"] >= 2
            else None
        )
        assert_equivalent(
            config["scenario"],
            config["clients"],
            config["shards"],
            config["batch"],
            config["seed"],
            regions=regions,
        )


class TestLockstep:
    """Dispatch-granular equivalence: counters match after *every* step,
    so a cache bug cannot hide behind later compensating errors."""

    def test_counters_integer_equal_after_every_dispatch(self):
        scenario, clients, shards, batch, seed = "routing", 40, 3, 4, 0
        ref = make_backend(scenario, shards, batch, 24, seed)
        coh = make_backend(scenario, shards, batch, 24, seed)
        cached = _CohortCache(coh)
        events = generate_events(scenario, clients, clients, ref.keys(), seed)
        plan = plan_dispatches(events, shards, batch)
        ref_engine = LoadEngine(ref, shards, batch)
        coh_engine = CohortLoadEngine(cached, shards, batch)
        for index, (slot, batch_events) in enumerate(plan):
            ref_engine._flush(slot, list(batch_events), index)
            coh_engine._fold(slot, list(batch_events), index)
            ref_counters = {
                sid: {d: c.as_dict() for d, c in acct.snapshot().items()}
                for sid, acct in ref.dep.accountants().items()
            }
            coh_counters = {
                sid: {d: c.as_dict() for d, c in acct.snapshot().items()}
                for sid, acct in coh.dep.accountants().items()
            }
            assert ref_counters == coh_counters, f"diverged at dispatch {index}"
            assert ref_engine.busy_until == coh_engine.busy_until
        assert len(cached._entries) > 0  # the cache actually engaged


class TestAggregateResult:
    """The cohort tier's LoadResult carries aggregates, not a log."""

    def test_no_materialized_events_but_same_fingerprint(self):
        cohort = run_load_cohorts("routing", 30, 2, 4, 0)
        client = run_load_engine("routing", 30, 2, 4, 0)
        assert cohort.events == []
        assert cohort.event_fingerprint == client.event_fingerprint
        assert cohort.served == client.served == 30
        assert cohort.weighted_latencies() == client.weighted_latencies()

    def test_streaming_fingerprint_matches_materialized(self):
        from repro.load.clients import event_log_fingerprint, iter_events
        from repro.load.engine import population_keys

        keys = population_keys("routing", 24, 7)
        events = generate_events("routing", 20, 20, keys, 7)
        assert streaming_fingerprint(
            iter_events("routing", 20, 20, keys, 7)
        ) == event_log_fingerprint(events)

    def test_cache_hits_counted(self):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(interval=10_000_000)
        tracer = obs.Tracer(metrics=registry)
        with obs.tracing(tracer):
            # batch 1 keeps the signature space small enough that a
            # 200-client population genuinely repeats dispatches
            run_load_cohorts("routing", 200, 2, 1, 0)
        assert registry.total("load_cohort_hits") > 0
        assert registry.total("load_cohort_misses") > 0
