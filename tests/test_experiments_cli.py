"""The reusable experiment layer and the CLI entry point."""

import pytest

from repro import experiments
from repro.__main__ import main


class TestExperimentLayer:
    def test_table2_runs_and_formats(self):
        results = experiments.run_table2()
        assert set(results) == {(1, False), (1, True), (100, False), (100, True)}
        text = experiments.format_table2(results)
        assert "Table 2" in text
        assert "13K" in text

    def test_table1_roles_present(self):
        results = experiments.run_table1()
        for with_dh in (False, True):
            assert set(results[with_dh]) == {"target", "quoting", "challenger"}
        text = experiments.format_table1(results)
        assert "challenger cycles" in text

    def test_table4_small_scale(self):
        sgx, native = experiments.run_table4(n_ases=5, seed=b"cli-test")
        assert sgx.routes == native.routes
        text = experiments.format_table4(sgx, native)
        assert "Inter-domain" in text and "overhead" in text

    def test_figure3_short_sweep(self):
        series = experiments.run_figure3(sweep=[4, 6], seed=b"cli-fig")
        assert [p["n"] for p in series] == [4, 6]
        assert all(p["sgx"] > p["native"] for p in series)
        assert "Figure 3" in experiments.format_figure3(series)


class TestCli:
    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "regenerated" in out

    def test_table4_with_custom_size(self, capsys):
        assert main(["table4", "--ases", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 ASes" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])
