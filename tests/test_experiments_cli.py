"""The reusable experiment layer and the CLI entry point."""

import json

import pytest

import repro.__main__ as cli
from repro import experiments, obs
from repro.__main__ import main


class TestExperimentLayer:
    def test_table2_runs_and_formats(self):
        results = experiments.run_table2()
        assert set(results) == {(1, False), (1, True), (100, False), (100, True)}
        text = experiments.format_table2(results)
        assert "Table 2" in text
        assert "13K" in text

    def test_table1_roles_present(self):
        results = experiments.run_table1()
        for with_dh in (False, True):
            assert set(results[with_dh]) == {"target", "quoting", "challenger"}
        text = experiments.format_table1(results)
        assert "challenger cycles" in text

    def test_table4_small_scale(self):
        sgx, native = experiments.run_table4(n_ases=5, seed=b"cli-test")
        assert sgx.routes == native.routes
        text = experiments.format_table4(sgx, native)
        assert "Inter-domain" in text and "overhead" in text

    def test_figure3_short_sweep(self):
        series = experiments.run_figure3(sweep=[4, 6], seed=b"cli-fig")
        assert [p["n"] for p in series] == [4, 6]
        assert all(p["sgx"] > p["native"] for p in series)
        assert "Figure 3" in experiments.format_figure3(series)


class TestCli:
    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "regenerated" in out

    def test_table4_with_custom_size(self, capsys):
        assert main(["table4", "--ases", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 ASes" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_failing_scenario_exits_nonzero(self, monkeypatch, capsys):
        def boom():
            raise RuntimeError("scenario exploded")

        monkeypatch.setattr(cli, "_table2", boom)
        assert main(["table2"]) == 1
        err = capsys.readouterr().err
        assert "table2 failed" in err
        assert "scenario exploded" in err

    def test_all_stops_at_first_failure(self, monkeypatch, capsys):
        ran = []
        monkeypatch.setattr(cli, "_table1", lambda: ran.append("table1"))
        monkeypatch.setattr(
            cli, "_table2", lambda: (_ for _ in ()).throw(ValueError("nope"))
        )
        monkeypatch.setattr(cli, "_table3", lambda: ran.append("table3"))
        assert main(["all"]) == 1
        assert ran == ["table1"]

    def test_all_honors_ases_and_seed(self, monkeypatch, capsys):
        seen = {}
        monkeypatch.setattr(cli, "_table1", lambda: None)
        monkeypatch.setattr(cli, "_table2", lambda: None)
        monkeypatch.setattr(cli, "_table3", lambda: None)
        monkeypatch.setattr(cli, "_table4", lambda n: seen.setdefault("ases", n))
        monkeypatch.setattr(cli, "_figure3", lambda: None)
        monkeypatch.setattr(cli, "_switchless", lambda: None)
        monkeypatch.setattr(cli, "_rings", lambda: None)
        monkeypatch.setattr(cli, "_faults", lambda s: seen.setdefault("seed", s))
        assert main(["all", "--ases", "7", "--seed", "3"]) == 0
        assert seen == {"ases": 7, "seed": 3}
        out = capsys.readouterr().out
        assert out.count("regenerated") == 8


class TestTraceCli:
    def test_trace_requires_scenario(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_scenario_positional_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["table2", "table3"])

    def test_trace_table2_json_to_stdout(self, capsys):
        assert main(["trace", "table2"]) == 0
        captured = capsys.readouterr()
        # stdout = the JSON payload followed by the "[... regenerated]"
        # status line; parse up to the payload's closing brace.
        payload = json.loads(captured.out[: captured.out.rindex("}") + 1])
        events = obs.validate_trace_events(payload)
        assert events
        assert "top cost sites" in captured.err

    def test_trace_table2_folded(self, capsys):
        assert main(["trace", "table2", "--format", "folded"]) == 0
        out = capsys.readouterr().out
        assert any(
            line.startswith("table2;") for line in out.splitlines() if line
        )

    def test_trace_table2_prom(self, capsys):
        assert main(["trace", "table2", "--format", "prom"]) == 0
        assert "repro_trace_span_count" in capsys.readouterr().out

    def test_trace_out_writes_file(self, tmp_path, capsys):
        assert main(["trace", "table2", "--out", str(tmp_path)]) == 0
        path = tmp_path / "trace-table2.json"
        assert path.exists()
        obs.validate_trace_events(json.loads(path.read_text()))
        assert str(path) in capsys.readouterr().out

    def test_trace_failure_exits_nonzero(self, monkeypatch, capsys):
        def boom(trace=None):
            raise RuntimeError("traced scenario exploded")

        monkeypatch.setattr(experiments, "run_table2", boom)
        assert main(["trace", "table2"]) == 1
        assert "trace failed" in capsys.readouterr().err


class TestLoadCli:
    def test_load_requires_scenario(self):
        with pytest.raises(SystemExit):
            main(["load"])

    def test_load_rejects_table_scenarios(self):
        with pytest.raises(SystemExit):
            main(["load", "table2"])

    def test_load_writes_valid_report(self, tmp_path, capsys, monkeypatch):
        from repro.load.report import validate_bench

        monkeypatch.chdir(tmp_path)
        assert main(
            ["load", "routing", "--clients", "20", "--shards", "2",
             "--batch", "4", "--seed", "0"]
        ) == 0
        captured = capsys.readouterr()
        assert "Load — routing" in captured.out
        assert "BENCH_load.json" in captured.err
        doc = json.loads((tmp_path / "BENCH_load.json").read_text())
        assert validate_bench(doc) == []
        assert doc["config"] == {
            "clients": 20, "shards": 2, "batch": 4, "seed": 0, "events": 20,
            "regions": None,
        }

    def test_load_out_flag_and_determinism(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        base = ["load", "routing", "--clients", "15", "--shards", "2",
                "--batch", "2", "--seed", "5"]
        assert main(base + ["--out", str(a)]) == 0
        assert main(base + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_run_load_experiment_layer(self):
        doc = experiments.run_load("routing", clients=10, shards=1, batch=1, seed=0)
        assert doc["schema"] == "repro.load/1"
        text = experiments.format_load(doc)
        assert "Load — routing" in text
        assert "crossings / event" in text

    def test_load_ablation_formats(self):
        grid = experiments.run_load_ablation(
            "routing", clients=8, shard_counts=(1, 2), batch_sizes=(1, 4), seed=0
        )
        assert set(grid) == {(1, 1), (1, 4), (2, 1), (2, 4)}
        text = experiments.format_load_ablation(grid)
        assert "Load ablation" in text
        assert "crossings/event" in text

    def test_load_cohorts_flag_byte_identical(self, tmp_path):
        a, b = tmp_path / "client.json", tmp_path / "cohort.json"
        base = ["load", "routing", "--clients", "30", "--shards", "2",
                "--batch", "2", "--seed", "3"]
        assert main(base + ["--out", str(a)]) == 0
        assert main(base + ["--cohorts", "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_regions_flag_writes_tree_config(self, tmp_path):
        out = tmp_path / "tree.json"
        assert main(
            ["load", "routing", "--clients", "20", "--shards", "4",
             "--regions", "2", "--cohorts", "--out", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["config"]["regions"] == 2

    def test_cohorts_and_regions_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["table2", "--cohorts"])
        with pytest.raises(SystemExit):
            main(["bench", "--regions", "2"])

    def test_load_cohort_ablation_formats(self):
        grid = experiments.run_load_cohort_ablation(
            "routing", client_counts=(20,), shards=2, batch=2,
            region_counts=(None, 2),
        )
        assert set(grid) == {
            (20, None, "per-client"), (20, None, "cohort"),
            (20, 2, "per-client"), (20, 2, "cohort"),
        }
        assert all(
            cell["matches_per_client"]
            for key, cell in grid.items() if key[2] == "cohort"
        )
        text = experiments.format_load_cohort_ablation(grid)
        assert "Load cohorts" in text
        assert "== per-client" in text
