"""Property-based round-trip tests for the wire format.

Every protocol message in the library flows through
:class:`repro.wire.Writer` / :class:`repro.wire.Reader`, so the
properties here — encode/decode identity for random values, nested
structures, and a ProtocolError (never an IndexError or silent
garbage) on every truncation — underwrite all of them.

The hypothesis profile is derandomized so the suite stays
deterministic, per the repo's reproducibility rule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.wire import Reader, Writer

settings.register_profile("repro", derandomize=True, max_examples=60)
settings.load_profile("repro")

_UINTS = {
    "u8": 1 << 8,
    "u16": 1 << 16,
    "u32": 1 << 32,
    "u64": 1 << 64,
}


class TestScalarRoundTrips:
    @pytest.mark.parametrize("field", sorted(_UINTS))
    @given(data=st.data())
    def test_uint_round_trip(self, field, data):
        value = data.draw(st.integers(0, _UINTS[field] - 1))
        encoded = getattr(Writer(), field)(value).getvalue()
        reader = Reader(encoded)
        assert getattr(reader, field)() == value
        reader.expect_end()

    @pytest.mark.parametrize("field", sorted(_UINTS))
    @given(data=st.data())
    def test_uint_out_of_range_rejected(self, field, data):
        value = data.draw(
            st.one_of(
                st.integers(max_value=-1),
                st.integers(min_value=_UINTS[field]),
            )
        )
        with pytest.raises(ProtocolError):
            getattr(Writer(), field)(value)

    @given(st.binary(max_size=500))
    def test_varbytes_round_trip(self, payload):
        encoded = Writer().varbytes(payload).getvalue()
        assert Reader(encoded).varbytes() == payload

    @given(st.binary(max_size=500))
    def test_raw_round_trip(self, payload):
        encoded = Writer().raw(payload).getvalue()
        assert Reader(encoded).raw(len(payload)) == payload

    @given(st.text(max_size=200))
    def test_string_round_trip(self, text):
        encoded = Writer().string(text).getvalue()
        assert Reader(encoded).string() == text

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_varint_round_trip(self, value):
        encoded = Writer().varint(value).getvalue()
        assert Reader(encoded).varint() == value

    def test_varint_negative_rejected(self):
        with pytest.raises(ProtocolError):
            Writer().varint(-1)

    @given(st.lists(st.text(max_size=30), max_size=20))
    def test_strings_round_trip(self, items):
        encoded = Writer().strings(items).getvalue()
        assert Reader(encoded).strings() == items


class TestNestedStructures:
    @given(
        st.integers(0, 255),
        st.binary(max_size=100),
        st.lists(st.text(max_size=20), max_size=8),
        st.integers(0, (1 << 64) - 1),
        st.binary(min_size=16, max_size=16),
    )
    def test_mixed_message_round_trip(self, tag, blob, names, seq, digest):
        encoded = (
            Writer()
            .u8(tag)
            .varbytes(blob)
            .strings(names)
            .u64(seq)
            .raw(digest)
            .getvalue()
        )
        reader = Reader(encoded)
        assert reader.u8() == tag
        assert reader.varbytes() == blob
        assert reader.strings() == names
        assert reader.u64() == seq
        assert reader.raw(16) == digest
        reader.expect_end()

    @given(st.lists(st.binary(max_size=50), max_size=8))
    def test_nested_writers(self, chunks):
        # Inner messages embedded as varbytes of an outer message — the
        # shape every record/handshake frame in the repo uses.
        inner = [Writer().u32(len(c)).varbytes(c).getvalue() for c in chunks]
        outer = Writer().u32(len(inner))
        for blob in inner:
            outer.varbytes(blob)
        reader = Reader(outer.getvalue())
        count = reader.u32()
        assert count == len(chunks)
        for expected in chunks:
            inner_reader = Reader(reader.varbytes())
            assert inner_reader.u32() == len(expected)
            assert inner_reader.varbytes() == expected
            inner_reader.expect_end()
        reader.expect_end()


class TestTruncation:
    @given(
        st.integers(0, (1 << 32) - 1),
        st.binary(min_size=1, max_size=100),
        st.data(),
    )
    def test_every_strict_prefix_raises(self, value, payload, data):
        encoded = Writer().u32(value).varbytes(payload).getvalue()
        cut = data.draw(st.integers(0, len(encoded) - 1))
        reader = Reader(encoded[:cut])
        with pytest.raises(ProtocolError):
            reader.u32()
            reader.varbytes()
            reader.expect_end()

    @given(st.binary(max_size=20))
    def test_varbytes_length_overrun(self, payload):
        # A length prefix promising more bytes than the buffer holds.
        encoded = Writer().u32(len(payload) + 1).raw(payload).getvalue()
        with pytest.raises(ProtocolError):
            Reader(encoded).varbytes()

    def test_varbytes_over_cap(self):
        encoded = Writer().varbytes(b"x" * 10).getvalue()
        with pytest.raises(ProtocolError):
            Reader(encoded).varbytes(max_len=9)

    @given(st.binary(min_size=1, max_size=50))
    def test_trailing_bytes_detected(self, extra):
        encoded = Writer().u8(7).raw(extra).getvalue()
        reader = Reader(encoded)
        assert reader.u8() == 7
        with pytest.raises(ProtocolError):
            reader.expect_end()

    def test_empty_buffer(self):
        for field in ("u8", "u16", "u32", "u64", "varbytes", "string"):
            with pytest.raises(ProtocolError):
                getattr(Reader(b""), field)()
