"""Suite-wide fixtures, built on the shared factories in tests/fixtures.py.

These replace the per-module copies of the same recipes that used to
be scattered across ``tests/sgx``, ``tests/core`` and ``benchmarks``:
every test that just needs "an authority", "a platform", "an author
key" or "a fresh accountant" can take the fixture instead of
re-deriving it.  Modules that need a *specifically* seeded world keep
calling the ``make_*`` factories with their own seed.
"""

import pytest

from tests.fixtures import (
    make_accountant,
    make_author_key,
    make_authority,
    make_platform,
)


@pytest.fixture(scope="session")
def author_key():
    """One deterministic enclave-author RSA key for the whole run."""
    return make_author_key()


@pytest.fixture()
def authority():
    """A fresh attestation authority (stateful: per-test isolation)."""
    return make_authority()


@pytest.fixture()
def platform(authority):
    """A fresh platform named host-a, quoting enclave registered."""
    return make_platform("host-a", authority)


@pytest.fixture()
def accountant():
    """A fresh, empty cost accountant."""
    return make_accountant()
