#!/usr/bin/env python3
"""Case study 3: secure in-network functions over TLS (§3.3).

A client talks TLS to a web server through a chain of two middleboxes.
Without key provisioning the boxes forward opaque ciphertext; after
the client attests each box's enclave and hands over the session keys,
the boxes run DPI *inside their enclaves* — the host never sees
plaintext — and a blocking rule can kill a flow mid-stream.  A
tampered middlebox build fails attestation and never gets keys.

Run:  python examples/middlebox_dpi.py
"""

from repro.middlebox.scenarios import MiddleboxScenario

RULES = [
    ("pii-leak", b"SSN=", "alert"),
    ("malware-dl", b"EICAR-TEST", "block"),
]


def main() -> None:
    print("=== unilateral inspection (enterprise outbound) ===")
    scenario = MiddleboxScenario(n_middleboxes=2, rules=RULES)
    result = scenario.run(
        [
            b"POST /form name=alice SSN=123-45-6789",
            b"GET /weather",
        ]
    )
    print(f"replies: {[r[:30] for r in result.replies]}")
    print(f"middlebox enclaves attested by the client: {result.attestations}")
    print(f"keys provisioned to: {result.provisioned}")
    for name, stats in result.stats.items():
        print(
            f"  {name}: {stats['inspected']} records inspected in-enclave, "
            f"{stats['alerts']} alerts, {stats['opaque']} opaque (handshake)"
        )

    print("\n=== blocking rule kills the flow ===")
    scenario = MiddleboxScenario(n_middleboxes=1, rules=RULES)
    result = scenario.run(
        [b"hello", b"download EICAR-TEST now", b"this never arrives"]
    )
    print(f"delivered before the block: {result.replies}")
    print(f"flow blocked: {result.blocked}")

    print("\n=== tampered middlebox build gets nothing ===")
    scenario = MiddleboxScenario(n_middleboxes=1, tampered_boxes=(0,))
    result = scenario.run([b"confidential report"])
    print(f"attestation failures: {result.attestation_failures}")
    print(f"traffic still delivered: {result.replies}")
    print(
        f"records the rogue box could read: "
        f"{result.stats['mbox0']['inspected']} "
        f"(all {result.stats['mbox0']['opaque']} transits stayed opaque)"
    )

    print("\n=== bilateral consent (both endpoints must agree) ===")
    scenario = MiddleboxScenario(n_middleboxes=1, rules=RULES, bilateral=True)
    result = scenario.run([b"SSN=000-00-0000"])
    consents = scenario.middleboxes[0].enclave.ecall("flow_consents", "client")
    print(f"consents recorded in-enclave: {consents}")
    print(f"alerts: {result.stats['mbox0']['alerts']} (inspection active only after both)")


if __name__ == "__main__":
    main()
