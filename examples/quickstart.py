#!/usr/bin/env python3
"""Quickstart: two enclaves, one remote attestation, one secure channel.

This is the paper's core primitive in ~80 lines of user code: a
challenger enclave verifies that a *specific audited build* is running
inside a remote SGX enclave, bootstraps a Diffie-Hellman channel during
attestation (Figure 1), and exchanges a secret over it — while a
tampered build of the same service is rejected by measurement.

Run:  python examples/quickstart.py
"""

from repro.cost import format_count, render_counters
from repro.crypto import Rng, generate_rsa_keypair
from repro.errors import AttestationError
from repro.sgx import (
    AttestationAuthority,
    AttestationChallengerProgram,
    AttestationConfig,
    AttestationTargetProgram,
    IdentityPolicy,
    SgxPlatform,
    measure_program,
    run_attestation,
)


class PolicyVaultProgram(AttestationTargetProgram):
    """A service that will hold secrets — but only after it proves,
    via remote attestation, that it runs this exact code."""

    def store_policy(self, blob: bytes) -> str:
        self._vault = getattr(self, "_vault", [])
        self._vault.append(blob)
        return f"stored {len(blob)} bytes (total {len(self._vault)} policies)"


class TamperedVaultProgram(PolicyVaultProgram):
    """The attacker's build: it also leaks. Different code ->
    different MRENCLAVE -> attestation will reject it."""

    def store_policy(self, blob: bytes) -> str:
        self._leak = blob  # exfiltration hook
        return super().store_policy(blob)


def main() -> None:
    # "Intel": provisions CPUs with attestation keys, publishes the
    # group public key verifiers use.
    authority = AttestationAuthority(Rng(b"quickstart-authority"))
    author_key = generate_rsa_keypair(512, Rng(b"quickstart-author"))

    # Two physical machines.
    server = SgxPlatform("server-machine", authority, rng=Rng(b"server"))
    laptop = SgxPlatform("laptop", authority, rng=Rng(b"laptop"))

    # The audited build's measurement — derived offline from source,
    # exactly like the paper's deterministic-build story (Section 4).
    audited = measure_program(PolicyVaultProgram)
    print(f"audited MRENCLAVE: {audited.hex()[:24]}...")

    vault = server.load_enclave(PolicyVaultProgram(), author_key=author_key, name="vault")
    challenger = laptop.load_enclave(
        AttestationChallengerProgram(), author_key=author_key, name="challenger"
    )
    challenger.ecall(
        "configure_attestation",
        authority.verification_info(),
        IdentityPolicy.for_mrenclave(audited),
        AttestationConfig(with_dh=True),
    )

    messages = run_attestation(challenger, vault)
    print(f"remote attestation complete in {messages} messages")
    print(f"attested peer: {challenger.ecall('peer_identity').mrenclave.hex()[:24]}...")

    # The enclave is now trusted; use it.
    print(vault.ecall("store_policy", b"prefer customer routes via AS7018"))

    # What the attacker's host sees when it peeks at enclave memory:
    image = server.os_read_enclave_memory(vault)
    print(f"host's view of enclave memory: {image[:24].hex()}... (ciphertext)")

    # The tampered build launches fine on the attacker's own machine...
    rogue_machine = SgxPlatform("rogue", authority, rng=Rng(b"rogue"))
    rogue = rogue_machine.load_enclave(
        TamperedVaultProgram(), author_key=author_key, name="vault"
    )
    challenger2 = laptop.load_enclave(
        AttestationChallengerProgram(), author_key=author_key, name="challenger2"
    )
    challenger2.ecall(
        "configure_attestation",
        authority.verification_info(),
        IdentityPolicy.for_mrenclave(audited),
        AttestationConfig(with_dh=True),
    )
    try:
        run_attestation(challenger2, rogue)
    except AttestationError as exc:
        print(f"tampered build rejected: {exc}")

    # The paper's cost accounting, for free:
    print("\ncost accounting (server machine):")
    print(render_counters(server.accountant.domains()))
    total = server.accountant.total()
    from repro.cost import DEFAULT_MODEL

    print(
        f"\n~{format_count(DEFAULT_MODEL.cycles(total.sgx_instructions, total.normal_instructions))}"
        " modeled CPU cycles (DH parameter generation dominates, as in Table 1)"
    )


if __name__ == "__main__":
    main()
