#!/usr/bin/env python3
"""A tour of the SGX emulator itself — the substrate everything runs on.

Walks through the protections the paper's designs lean on, each
demonstrated live: measured launch, memory encryption, sealing, local
attestation, EPC paging (with tamper detection on evicted pages), and
the interrupt cost cliff.

Run:  python examples/sgx_emulator_tour.py
"""

from repro.cost import DEFAULT_MODEL, format_count
from repro.crypto import Rng, generate_rsa_keypair
from repro.errors import EnclaveAccessError, MeasurementError, SealingError
from repro.sgx import (
    AttestationAuthority,
    EnclaveProgram,
    SealPolicy,
    SgxPlatform,
    measure_program,
    run_local_attestation,
    sign_enclave,
)
from repro.sgx.epc import PAGE_SIZE
from repro.sgx.local_attestation import LocalAttestationPartyProgram


class VaultProgram(LocalAttestationPartyProgram):
    """Keeps a secret; can seal it for later instances of itself."""

    def put(self, secret: bytes) -> None:
        self._secret = secret

    def seal(self) -> bytes:
        return self.ctx.seal(self._secret, SealPolicy.MRENCLAVE)

    def unseal(self, blob: bytes) -> bytes:
        return self.ctx.unseal(blob)


class WorkerProgram(LocalAttestationPartyProgram):
    """A second enclave that wants to talk to the vault — locally."""

    def unseal(self, blob: bytes) -> bytes:
        return self.ctx.unseal(blob)  # wrong MRENCLAVE: must fail


class ScannerProgram(EnclaveProgram):
    def prepare(self, pages: int) -> int:
        self.ctx.alloc(pages * PAGE_SIZE)
        return self.ctx.heap_page_count

    def scan(self) -> None:
        for page in range(self.ctx.heap_page_count):
            self.ctx.write_heap(page, b"data!")


def banner(text: str) -> None:
    print(f"\n--- {text} " + "-" * max(0, 56 - len(text)))


def main() -> None:
    authority = AttestationAuthority(Rng(b"tour-authority"))
    author = generate_rsa_keypair(512, Rng(b"tour-author"))
    machine = SgxPlatform("workstation", authority, rng=Rng(b"tour"))

    banner("measured launch")
    vault = machine.load_enclave(VaultProgram(), author_key=author, name="vault")
    print("MRENCLAVE (live):   ", vault.identity.mrenclave.hex()[:32])
    print("MRENCLAVE (offline):", measure_program(VaultProgram).hex()[:32])
    bad_sig = sign_enclave(author, b"\x13" * 32)
    try:
        machine.load_enclave(VaultProgram(), sigstruct=bad_sig, name="forged")
    except MeasurementError as exc:
        print("EINIT with a mismatched SIGSTRUCT:", str(exc)[:60], "...")

    banner("memory encryption (MEE)")
    vault.ecall("put", b"root password: hunter2")
    try:
        _ = vault.program
    except EnclaveAccessError as exc:
        print("host access to the program object:", str(exc)[:55], "...")
    image = machine.os_read_enclave_memory(vault)
    print("host's view of an enclave page:", image[16:40].hex(), "...")

    banner("sealing")
    blob = vault.ecall("seal")
    print(f"sealed blob ({len(blob)} bytes), plaintext absent:",
          b"hunter2" not in blob)
    vault2 = machine.load_enclave(VaultProgram(), author_key=author, name="vault2")
    print("same build unseals:", vault2.ecall("unseal", blob))
    other = machine.load_enclave(WorkerProgram(), author_key=author, name="worker")
    try:
        other.ecall("unseal", blob)
    except SealingError as exc:
        print("different build unseals:", str(exc)[:50], "...")
    except AttributeError:
        pass

    banner("local (intra-platform) attestation")
    seen_worker, seen_vault = run_local_attestation(vault, other, b"\x07" * 32)
    print("vault verified a co-resident peer:", seen_worker.mrenclave.hex()[:24])
    print("worker verified the vault:        ", seen_vault.mrenclave.hex()[:24])

    banner("EPC paging")
    small = SgxPlatform(
        "small-epc", rng=Rng(b"tour-epc"), epc_frames=12, epc_paging=True
    )
    scanner = small.load_enclave(ScannerProgram(), author_key=author)
    scanner.ecall("prepare", 16)
    scanner.ecall("scan")
    print(
        f"working set > EPC: {small.epc.evictions} evictions, "
        f"{small.epc.reloads} reloads (EWB/ELDB with real MEE crypto)"
    )

    banner("interrupts (asynchronous exits)")
    for rate in (0.0, 1e-4):
        noisy = SgxPlatform(
            f"noisy-{rate}", rng=Rng(b"tour-aex"), interrupt_rate=rate
        )
        enclave = noisy.load_enclave(ScannerProgram(), author_key=author)
        before = noisy.accountant.snapshot()
        enclave.ecall("prepare", 4)
        from repro.cost import context as cost_context

        class Burn(EnclaveProgram):
            def burn(self):
                cost_context.charge_normal(2_000_000)

        burner = noisy.load_enclave(Burn(), author_key=author, name="burn")
        before = noisy.accountant.snapshot()
        burner.ecall("burn")
        delta = noisy.accountant.delta(before)["enclave:burn"]
        cycles = DEFAULT_MODEL.cycles(
            delta.sgx_instructions, delta.normal_instructions
        )
        print(
            f"AEX rate {rate:g}: {format_count(cycles)} cycles for the "
            f"same 2M-instruction workload"
        )


if __name__ == "__main__":
    main()
