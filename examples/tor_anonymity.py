#!/usr/bin/env python3
"""Case study 2: SGX-enabled Tor (§3.2).

Runs the same malicious-volunteer attack — a relay whose owner
modified the exit code to tamper with plaintext — against three
deployment stages:

* legacy Tor: the volunteer is admitted and the attack lands;
* incremental SGX ORs: the modified relay fails remote attestation at
  registration and never enters the consensus;
* fully SGX: no directory authorities at all — membership lives in a
  Chord DHT gated on attestation.

Run:  python examples/tor_anonymity.py
"""

from repro.tor.deployment import TorDeployment, TorDeploymentConfig

MALICIOUS = {"or1": "tamper"}


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    banner("Phase 0: legacy Tor (no SGX)")
    legacy = TorDeployment(
        TorDeploymentConfig(phase=0, n_relays=6, n_exits=2, malicious=MALICIOUS)
    )
    print("admission of the tampered volunteer:", legacy.relays["or1"].admitted_by)
    attack = legacy.run_client_request(forced_path=["or4", "or5", "or1"])
    print(f"circuit {' -> '.join(attack['path'])}")
    print(f"client received: {attack['reply'][:40]!r}...")
    print(f"content intact: {attack['intact']}  <-- one bad apple is enough")

    banner("Phase 2: SGX onion routers + SGX directories")
    sgx = TorDeployment(
        TorDeploymentConfig(phase=2, n_relays=5, n_exits=2, malicious=MALICIOUS)
    )
    print("rejected at attestation:", sgx.rejected_registrations)
    consensus = sgx.fetch_consensus()
    print("consensus relays:", [entry.nickname for entry in consensus.routers()])
    print(
        f"client attested {sgx.client_attestations} directory authorities "
        "while fetching the consensus (Table 3)"
    )
    clean = sgx.run_client_request()
    print(f"circuit {' -> '.join(clean['path'])}: intact = {clean['intact']}")

    banner("Phase 3: fully SGX, directory-less (Chord DHT)")
    full = TorDeployment(
        TorDeploymentConfig(phase=3, n_relays=6, n_exits=2, malicious=MALICIOUS)
    )
    print("DHT members:", full.dht.members())
    print("rejected joins:", full.dht.rejected_joins)
    result = full.run_client_request()
    print(f"circuit {' -> '.join(result['path'])}: intact = {result['intact']}")
    print(
        f"descriptor lookups: {full.dht.lookups}, "
        f"avg {full.dht.lookup_hops / max(1, full.dht.lookups):.1f} Chord hops"
    )
    print(
        "\nno directory authorities were required — membership checking "
        "is done by hardware through SGX, as the paper proposes."
    )


if __name__ == "__main__":
    main()
