#!/usr/bin/env python3
"""Case study 1: privacy-preserving SDN inter-domain routing (§3.1).

Builds a random 12-AS topology with Gao-Rexford business
relationships, runs the full SGX deployment — AS-local controller
enclaves ship their private BGP-like policies to the inter-domain
controller enclave over mutually attested channels; the controller
computes everyone's routes and returns each AS only its own — then:

* cross-checks the routes against an independent distributed BGP
  simulator (the paper validated with GNS3);
* runs a *policy verification predicate*: AS 'a' promised its customer
  'b' to prefer b's route — b verifies the promise with a single bit,
  learning nothing else (the SPIDeR-style check, in-enclave);
* compares steady-state instruction counts with the native baseline
  (the Table 4 experiment at small scale).

Run:  python examples/interdomain_routing.py
"""

from repro.cost import format_count
from repro.routing import (
    DistributedBgpSimulator,
    Predicate,
    PredicateKind,
    run_native_routing,
    run_sgx_routing,
)

N_ASES = 12
SEED = b"example-routing"


def main() -> None:
    # Probe run (native) to discover a true promise to verify.
    probe = run_native_routing(n_ases=N_ASES, seed=SEED)
    subject = probe.topology.asns[-1]
    some_route = next(iter(probe.routes[subject].values()))
    partner = some_route.learned_from
    predicate = Predicate(
        predicate_id="peering-promise-1",
        kind=PredicateKind.PREFERS_VIA,
        subject=subject,
        partner=partner,
        prefix=some_route.prefix,
    )
    print(
        f"registered agreement: does AS{subject} prefer the route to "
        f"{some_route.prefix} via AS{partner}?"
    )

    print(f"\nbuilding SGX deployment: {N_ASES} ASes + inter-domain controller ...")
    sgx = run_sgx_routing(
        n_ases=N_ASES,
        seed=SEED,
        predicates=[(subject, predicate), (partner, predicate)],
        queries=[(subject, predicate.predicate_id)],
    )
    print(f"  attested sessions: {sgx.attestations // 2} (mutual, so {sgx.attestations} quotes)")
    print(f"  simulated time: {sgx.sim_time:.2f}s")

    # Every AS got exactly its own routes; show one.
    example_as = sgx.topology.asns[0]
    routes = sgx.routes[example_as]
    print(f"\nAS{example_as} received {len(routes)} routes, e.g.:")
    for prefix, route in list(sorted(routes.items()))[:3]:
        print(f"  {prefix:<16} via AS-path {'-'.join(map(str, route.path))}")

    # GNS3-style validation with the independent oracle.
    oracle = DistributedBgpSimulator(sgx.policies)
    oracle.run()
    mismatches = sum(
        1 for asn in sgx.topology.asns if sgx.routes[asn] != oracle.best_routes(asn)
    )
    print(f"\noracle cross-check: {mismatches} mismatching ASes (expect 0)")

    answer = sgx.predicate_results[subject][predicate.predicate_id]
    print(f"predicate answer delivered to AS{subject}: {answer} (one bit, nothing more)")

    # The cost story.
    native = run_native_routing(n_ases=N_ASES, seed=SEED)
    sgx_n = sgx.controller_steady.normal_instructions
    native_n = native.controller_steady.normal_instructions
    print(
        f"\ninter-domain controller steady state: "
        f"{format_count(native_n)} native vs {format_count(sgx_n)} with SGX "
        f"(+{sgx_n / native_n - 1:.0%}; the paper measured +82% at 30 ASes)"
    )


if __name__ == "__main__":
    main()
