"""Ablation A2: SGX controller vs the SMPC alternative.

The paper's motivation for the routing case study: the SMPC-based
design (Gupta et al., HotNets'12) is "prohibitively expensive" while
"appropriately leveraging the hardware protection of SGX results in a
more straight-forward design without significant impact on
performance".  We measure the SGX controller's cycles and estimate the
same workload under garbled circuits (constants documented in
``repro.routing.smpc``); the gap should be orders of magnitude at
every scale.
"""

from conftest import emit

from repro.cost import DEFAULT_MODEL, format_count, format_table
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies, run_sgx_routing
from repro.routing.smpc import estimate_smpc_cycles

SWEEP = [5, 10, 20, 30]


def run_sweep():
    points = []
    for n_ases in SWEEP:
        sgx = run_sgx_routing(n_ases=n_ases, seed=b"ablation-smpc")
        # Re-run the computation natively to harvest the work counters
        # that parameterize the SMPC estimate.
        _, policies = build_policies(n_ases, b"ablation-smpc")
        controller = InterDomainController()
        for policy in policies.values():
            controller.submit_policy(policy)
        controller.compute_routes()
        sgx_cycles = DEFAULT_MODEL.cycles(
            sgx.controller_steady.sgx_instructions,
            sgx.controller_steady.normal_instructions,
        )
        smpc_cycles = estimate_smpc_cycles(controller.stats, n_parties=n_ases)
        points.append(
            {
                "n": n_ases,
                "sgx": sgx_cycles,
                "smpc": smpc_cycles,
                "updates": controller.stats.route_updates,
            }
        )
    return points


def test_ablation_sgx_vs_smpc(once, benchmark):
    points = once(run_sweep)

    rows = []
    for point in points:
        ratio = point["smpc"] / point["sgx"]
        rows.append(
            [
                point["n"],
                point["updates"],
                format_count(point["sgx"]),
                format_count(point["smpc"]),
                f"{ratio:,.0f}x",
            ]
        )
        benchmark.extra_info[f"n{point['n']}_ratio"] = ratio
    emit(
        format_table(
            ["# ASes", "route updates", "SGX cycles", "SMPC cycles (est.)", "SMPC/SGX"],
            rows,
            title="Ablation A2 — SGX-enabled controller vs SMPC estimate",
        )
    )

    # The paper's qualitative claim: SMPC is orders of magnitude more
    # expensive, at every scale, and the gap does not close with size.
    for point in points:
        assert point["smpc"] / point["sgx"] > 100, point
    assert points[-1]["smpc"] / points[-1]["sgx"] > 100
