"""Ablation: switchless transitions vs ordinary enclave crossings.

The switchless call queue (``repro.sgx.switchless``) replaces the two
~10K-cycle SGX instructions of each ocall/packet-I/O crossing with a
shared-memory request slot serviced by an untrusted worker.  This
ablation reruns the Table 2 methodology with the queue off and on:

* a 100-ocall burst — the per-call crossing cost the queue eliminates
  entirely (100 crossings -> 0), and
* the packet-transmission path across batch sizes — batching already
  amortizes the crossing; switchless removes the remainder.
"""

from conftest import emit

from repro.cost import DEFAULT_MODEL
from repro.experiments import (
    format_switchless_ablation,
    run_switchless_ablation,
)


def _cycles(counter) -> float:
    return DEFAULT_MODEL.cycles(
        counter.sgx_instructions, counter.normal_instructions
    )


def test_ablation_switchless(once, benchmark):
    results = once(run_switchless_ablation)
    emit(format_switchless_ablation(results))

    # ---- 100-ocall workload: >= 50% fewer crossings (acceptance bar;
    # the queue actually eliminates them entirely while a worker runs).
    off, on = results["ocalls"][False], results["ocalls"][True]
    assert off.enclave_crossings == results["n_ocalls"]
    assert on.enclave_crossings <= off.enclave_crossings // 2
    assert on.enclave_crossings == 0
    assert on.switchless_calls == results["n_ocalls"]
    assert _cycles(on) < _cycles(off)
    benchmark.extra_info["ocall_crossings_off"] = off.enclave_crossings
    benchmark.extra_info["ocall_crossings_on"] = on.enclave_crossings

    # ---- Table 2 packet path: measurable modeled-cycle reduction at
    # every batch size, and no SGX instructions on the switchless side.
    for (n, switchless), counter in results["packets"].items():
        benchmark.extra_info[f"pkt{n}_{'on' if switchless else 'off'}"] = _cycles(
            counter
        )
    for n in sorted({n for n, _ in results["packets"]}):
        off, on = results["packets"][(n, False)], results["packets"][(n, True)]
        assert on.enclave_crossings == 0
        assert on.sgx_instructions == 0
        assert _cycles(on) < 0.5 * _cycles(off), n
