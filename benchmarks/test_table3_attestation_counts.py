"""Table 3: number of remote attestations for each design, counted
from live runs (quoting-enclave QUOTE counters).

Paper formulas: inter-domain routing = # AS controllers; Tor authority
= # reachable exit nodes; Tor client = # authority nodes; middlebox =
# in-path middleboxes.  "Remote attestation occurs only at the
beginning ... the overhead of remote attestation is minimal."
"""

from conftest import emit

from repro.experiments import format_table3, run_table3


def test_table3_attestation_counts(once, benchmark):
    results = once(run_table3)
    emit(format_table3(results))
    for key, entry in results.items():
        benchmark.extra_info[key] = entry["measured"]
        assert entry["measured"] == entry["expected"], key
