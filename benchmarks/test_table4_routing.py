"""Table 4: costs of SDN-based inter-domain routing (30 ASes).

Paper: inter-domain 74M -> 135M normal instructions (+82%, 1448
SGX(U)); AS-local avg 13M -> 24M (+69%, 42 SGX(U)); steady state,
launch and attestation excluded.
"""

from conftest import emit

from repro.experiments import TABLE4_PAPER, format_table4, run_table4
from repro.routing.bgp import DistributedBgpSimulator

N_ASES = 30


def test_table4_routing_costs(once, benchmark):
    sgx, native = once(run_table4, N_ASES)
    emit(format_table4(sgx, native))

    # Correctness first: both deployments computed identical routes,
    # matching the independent distributed-BGP oracle (the paper's
    # GNS3 validation step).
    assert sgx.routes == native.routes
    oracle = DistributedBgpSimulator(sgx.policies)
    oracle.run()
    for asn in sgx.topology.asns:
        assert sgx.routes[asn] == oracle.best_routes(asn)

    aslc_native = sum(
        c.normal_instructions for c in native.as_steady.values()
    ) / len(native.as_steady)
    aslc_sgx = sum(c.normal_instructions for c in sgx.as_steady.values()) / len(
        sgx.as_steady
    )
    idc_overhead = (
        sgx.controller_steady.normal_instructions
        / native.controller_steady.normal_instructions
        - 1
    )
    aslc_overhead = aslc_sgx / aslc_native - 1
    benchmark.extra_info.update(
        {
            "idc_native": native.controller_steady.normal_instructions,
            "idc_sgx": sgx.controller_steady.normal_instructions,
            "idc_overhead": idc_overhead,
            "aslc_overhead": aslc_overhead,
        }
    )

    # Magnitudes within 2x of the paper; overheads in the paper's band.
    assert 0.5 < native.controller_steady.normal_instructions / TABLE4_PAPER["idc_native"] < 2.0
    assert 0.5 < sgx.controller_steady.normal_instructions / TABLE4_PAPER["idc_sgx"] < 2.0
    assert 0.5 < aslc_native / TABLE4_PAPER["aslc_native"] < 2.0
    assert 0.5 < aslc_sgx / TABLE4_PAPER["aslc_sgx"] < 2.0
    assert 0.5 < idc_overhead < 1.2       # paper: 0.82
    assert 0.4 < aslc_overhead < 1.1      # paper: 0.69
