"""Table 1: number of instructions during remote attestation.

Paper values: target 20 SGX(U) / 154M (w/o DH) / 4338M (w/ DH);
quoting 17 / 125M; challenger 8 / 124M / 348M; headline cycles:
challenger ~626M, remote platform ~8033M, DH ~90% of the target work.
"""

from conftest import emit

from repro.cost import DEFAULT_MODEL
from repro.experiments import TABLE1_PAPER, format_table1, run_table1


def test_table1_remote_attestation(once, benchmark):
    results = once(run_table1)
    emit(format_table1(results))

    for (role, with_dh), (paper_sgx, paper_normal) in TABLE1_PAPER.items():
        counter = results[with_dh][role]
        benchmark.extra_info[f"{role}_{'dh' if with_dh else 'nodh'}_normal"] = (
            counter.normal_instructions
        )
        # Normal-instruction counts land within 5% of the paper.
        assert abs(counter.normal_instructions - paper_normal) / paper_normal < 0.05, (
            role,
            with_dh,
        )
        # SGX(U) counts are the same magnitude (protocol structure
        # differs slightly from the OpenSGX prototype's).
        assert 0.5 * paper_sgx <= counter.sgx_instructions <= 2 * paper_sgx

    # Headline shapes.
    dh = results[True]
    challenger_cycles = DEFAULT_MODEL.cycles(
        dh["challenger"].sgx_instructions, dh["challenger"].normal_instructions
    )
    remote_cycles = DEFAULT_MODEL.cycles(
        dh["target"].sgx_instructions + dh["quoting"].sgx_instructions,
        dh["target"].normal_instructions + dh["quoting"].normal_instructions,
    )
    dh_share = (
        dh["target"].normal_instructions
        - results[False]["target"].normal_instructions
    ) / dh["target"].normal_instructions
    assert abs(challenger_cycles - 626e6) / 626e6 < 0.05
    assert abs(remote_cycles - 8033e6) / 8033e6 < 0.05
    assert dh_share > 0.85  # paper: ~90%
