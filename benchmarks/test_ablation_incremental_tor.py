"""Ablation A4: the interim deployment's security/anonymity tradeoff.

Paper open issue: "incremental deployment raises new issues, such as
finding an interim solution that balances security and privacy with
performance and efficiency."  We sweep the SGX-verified fraction and
compare client policies:

* attack exposure (P[tampering exit], P[bad-apple correlation]) falls
  with the SGX fraction only if clients *use* the information;
* REQUIRE_SGX zeroes exposure immediately but shrinks the anonymity
  set (guard/exit pools) and costs availability at low fractions;
* PREFER_SGX is the interim sweet spot: exposure drops to zero as soon
  as any SGX exits exist, with no availability loss.
"""

from conftest import emit

from repro.cost import format_table
from repro.tor.incremental import ClientPolicy, simulate

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
N_RELAYS = 30
N_EXITS = 10
N_MALICIOUS = 3
TRIALS = 1500


def run_sweep():
    table = {}
    for policy in ClientPolicy:
        for fraction in FRACTIONS:
            table[(policy, fraction)] = simulate(
                n_relays=N_RELAYS,
                n_exits=N_EXITS,
                n_malicious=N_MALICIOUS,
                sgx_fraction=fraction,
                policy=policy,
                trials=TRIALS,
            )
    return table


def test_ablation_incremental_deployment(once, benchmark):
    table = once(run_sweep)

    rows = []
    for policy in ClientPolicy:
        for fraction in FRACTIONS:
            stats = table[(policy, fraction)]
            rows.append(
                [
                    policy.value,
                    f"{fraction:.0%}",
                    f"{stats.p_tamper:.3f}",
                    f"{stats.p_bad_apple:.4f}",
                    stats.exit_pool_size,
                    f"{stats.availability:.0%}",
                ]
            )
            benchmark.extra_info[f"{policy.value}@{fraction}"] = stats.p_tamper
    emit(
        format_table(
            [
                "client policy",
                "SGX fraction",
                "P(tamper exit)",
                "P(bad apple)",
                "exit pool",
                "circuits built",
            ],
            rows,
            title=(
                "Ablation A4 — incremental SGX deployment "
                f"({N_RELAYS} relays, {N_EXITS} exits, {N_MALICIOUS} malicious)"
            ),
        )
    )

    any_policy = {f: table[(ClientPolicy.ANY, f)] for f in FRACTIONS}
    prefer = {f: table[(ClientPolicy.PREFER_SGX, f)] for f in FRACTIONS}
    require = {f: table[(ClientPolicy.REQUIRE_SGX, f)] for f in FRACTIONS}

    # Legacy clients gain nothing from deployment they ignore:
    baseline = N_MALICIOUS / N_EXITS
    for fraction in FRACTIONS:
        assert abs(any_policy[fraction].p_tamper - baseline) < 0.1

    # PREFER_SGX: exposure collapses once SGX exits exist, and
    # availability never suffers.
    assert prefer[0.0].p_tamper > 0.15
    for fraction in (0.25, 0.5, 0.75, 1.0):
        assert prefer[fraction].p_tamper == 0.0
        assert prefer[fraction].availability == 1.0

    # REQUIRE_SGX: always zero exposure; at fraction 0 no circuit can
    # be built at all, and the anonymity set tracks the SGX subset.
    assert require[0.0].availability == 0.0
    for fraction in (0.25, 0.5, 0.75, 1.0):
        assert require[fraction].p_tamper == 0.0
        assert require[fraction].exit_pool_size <= prefer[1.0].exit_pool_size
    assert require[0.25].exit_pool_size < require[1.0].exit_pool_size

    # The anonymity cost: the strict policy's pools are smaller than
    # the legacy pools until deployment completes.
    assert require[0.5].guard_pool_size < any_policy[0.5].guard_pool_size
