"""Wall-clock perf trajectory: cold vs warm fast paths.

Unlike the table/figure benchmarks in this directory, which replay the
paper's *modeled* numbers, this one measures the reproduction's own
wall time: every scenario runs once with the crypto caches disabled
(the pure-Python oracle) and once warm, and the speedup is pinned so a
regression that loses the fast paths fails loudly.

Run standalone (``python benchmarks/perf.py``, same as
``python -m repro bench``) or under pytest-benchmark::

    pytest benchmarks/perf.py --benchmark-only -s
"""

import sys

from conftest import emit

from repro import perfbench


def test_perf_fastpaths(once, benchmark):
    doc = once(lambda: perfbench.run_perf(smoke=True, repeats=3))
    assert perfbench.validate_perf(doc) == []
    emit(perfbench.format_perf(doc))
    for name, entry in doc["scenarios"].items():
        benchmark.extra_info[f"{name}_cold_median_s"] = entry["cold_median_s"]
        benchmark.extra_info[f"{name}_warm_median_s"] = entry["warm_median_s"]
        benchmark.extra_info[f"{name}_speedup"] = entry["speedup"]
        # Warm must never lose to cold: the caches replay the exact
        # modeled charges, so their only observable effect is wall
        # time — and that effect must point the right way.
        assert entry["speedup"] >= 1.0, f"{name}: cached path slower than cold"


def test_perf_ablation_grid(once, benchmark):
    doc = once(lambda: perfbench.run_ablation(smoke=True, workers_grid=[1, 2]))
    assert perfbench.validate_perf(doc) == []
    emit(perfbench.format_perf(doc))
    for cell in doc["cells"]:
        key = f"caches_{'on' if cell['caches'] else 'off'}_workers_{cell['workers']}"
        benchmark.extra_info[key] = cell["seconds"]


if __name__ == "__main__":
    sys.exit(perfbench.main())
