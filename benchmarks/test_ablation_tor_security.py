"""Ablation A3: Tor attack surface across SGX deployment phases.

The security argument of Section 3.2, quantified: run the same
malicious-volunteer workload (a tampering exit + a snooping relay)
against each deployment phase and count what the attacker achieves.
"""

from conftest import emit

from repro.cost import format_table
from repro.errors import TorError
from repro.tor.deployment import TorDeployment, TorDeploymentConfig

MALICIOUS = {"or1": "tamper", "or2": "snoop"}
N_RELAYS = 6
N_EXITS = 3  # or1, or2, or3 are exits


def evaluate_phase(phase: int):
    deployment = TorDeployment(
        TorDeploymentConfig(
            phase=phase,
            n_relays=N_RELAYS,
            n_exits=N_EXITS,
            malicious=dict(MALICIOUS),
            seed=b"ablation-tor",
        )
    )
    admitted = sorted(
        name
        for name, handle in deployment.relays.items()
        if handle.malicious
        and (
            (phase < 3 and any(handle.admitted_by.values()))
            or (phase >= 3 and name in (deployment.dht.members() if deployment.dht else []))
        )
    )

    # Can the attacker's exit tamper with a real client flow?
    tamper_success = False
    try:
        result = deployment.run_client_request(
            forced_path=["or5", "or6", "or1"]
        )
        tamper_success = not result["intact"]
    except TorError:
        tamper_success = False  # cannot even route through it

    # Does honest traffic survive?
    honest = deployment.run_client_request(forced_path=["or5", "or6", "or3"])

    return {
        "phase": phase,
        "malicious_admitted": admitted,
        "tamper_success": tamper_success,
        "honest_intact": honest["intact"],
    }


def test_ablation_tor_attacks_by_phase(once, benchmark):
    results = once(lambda: [evaluate_phase(p) for p in (0, 1, 2, 3)])

    labels = {
        0: "legacy",
        1: "SGX directories",
        2: "+ SGX ORs",
        3: "fully SGX (DHT)",
    }
    rows = []
    for entry in results:
        rows.append(
            [
                f"{entry['phase']} ({labels[entry['phase']]})",
                ", ".join(entry["malicious_admitted"]) or "none",
                "YES" if entry["tamper_success"] else "no",
                "yes" if entry["honest_intact"] else "NO",
            ]
        )
        benchmark.extra_info[f"phase{entry['phase']}_tamper"] = entry[
            "tamper_success"
        ]
    emit(
        format_table(
            ["phase", "malicious relays admitted", "tamper attack works", "honest traffic ok"],
            rows,
            title="Ablation A3 — attack surface per SGX deployment phase",
        )
    )

    by_phase = {entry["phase"]: entry for entry in results}
    # Phases 0-1: the modified volunteer gets in and the attack lands.
    assert by_phase[0]["malicious_admitted"] == ["or1", "or2"]
    assert by_phase[0]["tamper_success"]
    assert by_phase[1]["tamper_success"]
    # Phases 2-3: attestation keeps modified relays out entirely.
    assert by_phase[2]["malicious_admitted"] == []
    assert not by_phase[2]["tamper_success"]
    assert by_phase[3]["malicious_admitted"] == []
    assert not by_phase[3]["tamper_success"]
    # Honest traffic works everywhere.
    assert all(entry["honest_intact"] for entry in results)
