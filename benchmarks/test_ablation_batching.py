"""Ablation A1: batched vs unbatched enclave I/O.

DESIGN.md calls out batching as the design lever behind Table 2's
amortization claim; this sweep finds the shape: per-packet cost falls
hyperbolically with batch size and saturates near the marginal
per-packet cost.
"""

from conftest import emit

from repro.cost import DEFAULT_MODEL, format_table
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.net.network import MTU
from repro.sgx import EnclaveProgram, SgxPlatform

BATCHES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
TOTAL_PACKETS = 256


class BatchedSenderProgram(EnclaveProgram):
    def send_in_batches(self, total: int, batch: int) -> None:
        payload = bytes(MTU)
        remaining = total
        while remaining > 0:
            count = min(batch, remaining)
            self.ctx.send_packets(lambda _p: None, [payload] * count)
            remaining -= count


def measure(batch: int):
    platform = SgxPlatform("batch-host", rng=Rng(b"ablation-batch"))
    author = generate_rsa_keypair(512, Rng(b"ablation-author"))
    enclave = platform.load_enclave(BatchedSenderProgram(), author_key=author)
    before = platform.accountant.snapshot()
    enclave.ecall("send_in_batches", TOTAL_PACKETS, batch)
    delta = platform.accountant.delta(before)[enclave.domain]
    return delta


def test_ablation_io_batching(once, benchmark):
    results = once(lambda: {batch: measure(batch) for batch in BATCHES})

    rows = []
    per_packet = {}
    for batch in BATCHES:
        counter = results[batch]
        cycles = DEFAULT_MODEL.cycles(
            counter.sgx_instructions, counter.normal_instructions
        )
        per_packet[batch] = cycles / TOTAL_PACKETS
        rows.append(
            [
                batch,
                counter.sgx_instructions,
                f"{counter.normal_instructions / TOTAL_PACKETS:.0f}",
                f"{per_packet[batch]:.0f}",
            ]
        )
        benchmark.extra_info[f"batch{batch}_cycles_per_pkt"] = per_packet[batch]
    emit(
        format_table(
            ["batch size", "SGX(U) total", "normal/pkt", "cycles/pkt"],
            rows,
            title=f"Ablation A1 — enclave I/O batching ({TOTAL_PACKETS} MTU packets)",
        )
    )

    # Monotone decrease and saturation.
    series = [per_packet[b] for b in BATCHES]
    assert all(b <= a for a, b in zip(series, series[1:]))
    # In cycles the win saturates against the per-packet EEXIT/ERESUME
    # floor (~20K cycles); in normal instructions it matches Table 2's
    # ~10x.
    assert series[0] / series[-1] > 3
    normal_first = results[1].normal_instructions / TOTAL_PACKETS
    normal_last = results[256].normal_instructions / TOTAL_PACKETS
    assert normal_first / normal_last > 5
    assert series[-2] / series[-1] < 1.2         # ...and saturates
    # The marginal cost floor is the calibrated per-packet cost.
    floor = DEFAULT_MODEL.cycles(
        DEFAULT_MODEL.send_per_packet_sgx, DEFAULT_MODEL.send_per_packet_normal
    )
    assert series[-1] < 2 * floor
