"""Figure 3: controller CPU cycles vs AS count, w/ and w/o SGX.

Paper: both curves grow superlinearly with topology complexity and the
SGX curve sits ~90% above native across the sweep.
"""

from conftest import emit

from repro.experiments import format_figure3, run_figure3

SWEEP = [5, 10, 15, 20, 25, 30]


def test_figure3_controller_scaling(once, benchmark):
    series = once(run_figure3, SWEEP)
    emit(format_figure3(series))

    for point in series:
        benchmark.extra_info[f"n{point['n']}_native"] = point["native"]
        benchmark.extra_info[f"n{point['n']}_sgx"] = point["sgx"]

    # Shape 1: monotone, superlinear growth.
    natives = [p["native"] for p in series]
    sgxs = [p["sgx"] for p in series]
    assert all(b > a for a, b in zip(natives, natives[1:]))
    assert all(b > a for a, b in zip(sgxs, sgxs[1:]))
    assert natives[-1] / natives[0] > SWEEP[-1] / SWEEP[0]

    # Shape 2: consistently above native; in the paper's band from
    # mid-scale (tiny topologies amplify fixed per-connection costs).
    for point in series:
        overhead = point["sgx"] / point["native"] - 1
        assert overhead > 0.5, point
        if point["n"] >= 15:
            assert overhead < 1.3, point

    final = series[-1]
    assert 0.6 < final["sgx"] / final["native"] - 1 < 1.2  # paper ~0.9
