"""Ablations A6/A7: the two SGX cost cliffs the paper flags.

Section 5: "enclaves running Intel SGX perform near to the native
speed of a processor **if no external communications or interrupts
(e.g., asynchronous exits in SGX) are incurred**" — and enclave memory
beyond the EPC pays EWB/ELDB paging.  Two sweeps:

* A6 — working set vs EPC size: cycles per touch jump once the heap
  stops fitting in the resident frames (paging thrash);
* A7 — interrupt (AEX) rate vs overhead on a fixed in-enclave
  workload: near-native when quiescent, degrading with interrupts.
"""

from conftest import emit

from repro.cost import DEFAULT_MODEL, format_count, format_table
from repro.crypto.drbg import Rng
from repro.crypto.rsa import generate_rsa_keypair
from repro.sgx import EnclaveProgram, SgxPlatform
from repro.sgx.epc import PAGE_SIZE

EPC_FRAMES = 24          # small EPC so the cliff is visible
WORKING_SETS = [4, 8, 12, 16, 24, 32]
AEX_RATES = [0.0, 1e-6, 1e-5, 1e-4, 1e-3]
SCAN_ROUNDS = 4
BURN_UNITS = 5_000_000


class ScanProgram(EnclaveProgram):
    def prepare(self, n_pages: int) -> int:
        self.ctx.alloc(n_pages * PAGE_SIZE)
        return self.ctx.heap_page_count

    def scan(self, rounds: int) -> int:
        touched = 0
        for _ in range(rounds):
            for page in range(self.ctx.heap_page_count):
                self.ctx.write_heap(page, b"\x5a" * 16)
                touched += 1
        return touched


class BusyProgram(EnclaveProgram):
    def burn(self, units: int) -> None:
        from repro.cost import context as cost_context

        cost_context.charge_normal(units)


def run_paging_sweep():
    points = []
    for working_set in WORKING_SETS:
        platform = SgxPlatform(
            f"ws{working_set}",
            rng=Rng(b"a6", str(working_set)),
            epc_frames=EPC_FRAMES,
            epc_paging=True,
        )
        author = generate_rsa_keypair(512, Rng(b"a6-author"))
        enclave = platform.load_enclave(ScanProgram(), author_key=author)
        enclave.ecall("prepare", working_set)
        platform.epc.evictions = 0
        platform.epc.reloads = 0
        before = platform.accountant.snapshot()
        touched = enclave.ecall("scan", SCAN_ROUNDS)
        delta = platform.accountant.delta(before)
        total = delta[enclave.domain]
        cycles_per_touch = DEFAULT_MODEL.cycles(
            total.sgx_instructions, total.normal_instructions
        ) / touched
        points.append(
            {
                "ws": working_set,
                "cycles_per_touch": cycles_per_touch,
                "evictions": platform.epc.evictions,
                "reloads": platform.epc.reloads,
            }
        )
    return points


def run_aex_sweep():
    points = []
    for rate in AEX_RATES:
        platform = SgxPlatform(
            f"aex{rate}", rng=Rng(b"a7", str(rate)), interrupt_rate=rate
        )
        author = generate_rsa_keypair(512, Rng(b"a7-author"))
        enclave = platform.load_enclave(BusyProgram(), author_key=author)
        before = platform.accountant.snapshot()
        enclave.ecall("burn", BURN_UNITS)
        delta = platform.accountant.delta(before)[enclave.domain]
        cycles = DEFAULT_MODEL.cycles(
            delta.sgx_instructions, delta.normal_instructions
        )
        points.append({"rate": rate, "cycles": cycles, "aex_pairs": (delta.sgx_instructions - 2) // 2})
    return points


def test_ablation_a6_epc_working_set(once, benchmark):
    points = once(run_paging_sweep)
    rows = [
        [
            p["ws"],
            f"{p['cycles_per_touch']:.0f}",
            p["evictions"],
            p["reloads"],
        ]
        for p in points
    ]
    emit(
        format_table(
            ["heap pages", "cycles/touch", "evictions", "reloads"],
            rows,
            title=f"Ablation A6 — working set vs EPC ({EPC_FRAMES} frames)",
        )
    )
    for p in points:
        benchmark.extra_info[f"ws{p['ws']}"] = p["cycles_per_touch"]

    by_ws = {p["ws"]: p for p in points}
    fits = [p for p in points if by_ws[p["ws"]]["evictions"] == 0]
    thrashes = [p for p in points if p["evictions"] > 0]
    assert fits and thrashes, "sweep must cross the EPC boundary"
    # The cliff: thrashing touches cost several times more.
    cheap = max(p["cycles_per_touch"] for p in fits)
    expensive = max(p["cycles_per_touch"] for p in thrashes)
    assert expensive > 3 * cheap
    # Monotone once past the cliff: bigger working sets, no cheaper.
    t = [p["cycles_per_touch"] for p in thrashes]
    assert t[-1] >= t[0] * 0.8


def test_ablation_a7_interrupt_rate(once, benchmark):
    points = once(run_aex_sweep)
    base = points[0]["cycles"]
    rows = [
        [
            f"{p['rate']:.0e}",
            format_count(p["cycles"]),
            p["aex_pairs"],
            f"{p['cycles'] / base - 1:+.1%}",
        ]
        for p in points
    ]
    emit(
        format_table(
            ["AEX per instr", "cycles", "AEX events", "overhead vs quiescent"],
            rows,
            title="Ablation A7 — asynchronous-exit rate on a fixed "
            f"{format_count(BURN_UNITS)}-instruction enclave workload",
        )
    )
    for p in points:
        benchmark.extra_info[f"rate{p['rate']}"] = p["cycles"]

    cycles = [p["cycles"] for p in points]
    assert all(b >= a for a, b in zip(cycles, cycles[1:]))
    # Quiescent ~ native; heavy interruption is markedly worse.
    assert cycles[0] * 1.5 < cycles[-1]
    assert points[1]["cycles"] / cycles[0] < 1.05  # rare interrupts ~ free
