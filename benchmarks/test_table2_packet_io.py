"""Table 2: instructions for packet transmission from inside an enclave.

Paper: 1 packet = 6 SGX(U) + 13K (97K with crypto); 100 packets = 204
SGX(U) + 136K (972K with crypto); batching amortizes ~10x.
"""

from conftest import emit

from repro.experiments import TABLE2_PAPER, format_table2, run_table2


def test_table2_packet_io(once, benchmark):
    results = once(run_table2)
    emit(format_table2(results))

    for key, counter in results.items():
        paper_sgx, paper_normal = TABLE2_PAPER[key]
        benchmark.extra_info[str(key)] = counter.normal_instructions
        assert counter.sgx_instructions == paper_sgx, key
        assert abs(counter.normal_instructions - paper_normal) / paper_normal < 0.05, key

    per_packet_single = results[(1, False)].normal_instructions
    per_packet_batched = results[(100, False)].normal_instructions / 100
    amortization = per_packet_single / per_packet_batched
    emit(
        f"amortization: {per_packet_single:.0f} -> {per_packet_batched:.0f} "
        f"normal instructions/packet ({amortization:.1f}x; paper ~9.6x)"
    )
    assert amortization > 5
