"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from
a live run of the reproduced system, prints the rows next to the
paper's reported values, and records machine-readable numbers in
``benchmark.extra_info``.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import sys

import pytest


def emit(text: str) -> None:
    """Print a result block (visible with -s; always flushed)."""
    print("\n" + text, flush=True)


@pytest.fixture()
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
