"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from
a live run of the reproduced system, prints the rows next to the
paper's reported values, and records machine-readable numbers in
``benchmark.extra_info``.  Run with::

    pytest benchmarks/ --benchmark-only -s

World-construction and output helpers are shared with the test suite
(see ``tests/fixtures.py``); this conftest only re-exports them and
adds the pytest-benchmark glue.
"""

import os
import sys

import pytest

# benchmarks/ is not a package; make the repo root importable so the
# harness can share tests/fixtures.py instead of duplicating it.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.fixtures import (  # noqa: E402  (path bootstrap above)
    emit,
    make_accountant,
    make_author_key,
    make_authority,
    make_platform,
)

__all__ = [
    "emit",
    "make_accountant",
    "make_author_key",
    "make_authority",
    "make_platform",
    "once",
]


@pytest.fixture()
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
