"""Ablation A5: convergence after failure — SDN controller vs BGP.

The paper motivates SDN-based inter-domain routing with "new
properties and features, such as fast convergence".  Quantified here:
crash one transit AS and compare how the two designs restore a
consistent routing state.

* distributed BGP: withdrawal/announcement waves ripple for multiple
  rounds (round = one hop of propagation delay);
* the centralized controller: one global recomputation, zero
  propagation rounds, then a single route push to each AS.

Both end states are verified identical.
"""

from conftest import emit

from repro.cost import format_table
from repro.routing.bgp import DistributedBgpSimulator
from repro.routing.controller import InterDomainController
from repro.routing.deployment import build_policies

SIZES = [10, 20, 30]
SEED = b"ablation-convergence"


def pick_failable(policies):
    """The transit AS with the most customers whose failure keeps the
    graph connected — maximizing genuine rerouting work."""
    from repro.routing.relationships import Relationship

    best, best_customers = None, -1
    for asn, policy in policies.items():
        neighbors = policy.neighbor_relationships
        if not neighbors:
            continue
        if not all(len(policies[n].neighbor_relationships) > 1 for n in neighbors):
            continue
        customers = sum(
            1 for rel in neighbors.values() if rel is Relationship.CUSTOMER
        )
        if customers > best_customers:
            best, best_customers = asn, customers
    assert best is not None, "no failable AS"
    return best


def run_point(n_ases: int):
    _, policies = build_policies(n_ases, SEED, override_fraction=0)
    victim = pick_failable(policies)

    # Distributed: converge, then fail, then count the storm.
    sim = DistributedBgpSimulator(policies)
    sim.run()
    messages_before = sim.announcements
    rounds = sim.fail_as(victim)
    storm = sim.announcements - messages_before

    # Centralized: recompute on the surviving topology and count work.
    _, fresh = build_policies(n_ases, SEED, override_fraction=0)
    controller = InterDomainController()
    for policy in fresh.values():
        controller.submit_policy(policy)
    controller.compute_routes()
    updates_before = controller.stats.route_updates
    controller.remove_policy(victim)
    controller.compute_routes()
    recompute_updates = controller.stats.route_updates - updates_before
    pushes = len(controller.participants())  # one route bundle per AS

    # Consistency: identical post-failure state.
    for asn in controller.participants():
        assert controller.routes_for(asn) == sim.best_routes(asn)

    return {
        "n": n_ases,
        "victim": victim,
        "bgp_rounds": rounds,
        "bgp_messages": storm,
        "controller_updates": recompute_updates,
        "controller_pushes": pushes,
    }


def test_ablation_convergence_after_failure(once, benchmark):
    points = once(lambda: [run_point(n) for n in SIZES])

    rows = []
    for point in points:
        rows.append(
            [
                point["n"],
                f"AS{point['victim']}",
                point["bgp_rounds"],
                point["bgp_messages"],
                0,
                point["controller_pushes"],
            ]
        )
        benchmark.extra_info[f"n{point['n']}_bgp_rounds"] = point["bgp_rounds"]
        benchmark.extra_info[f"n{point['n']}_bgp_messages"] = point["bgp_messages"]
    emit(
        format_table(
            [
                "# ASes",
                "failed",
                "BGP rounds",
                "BGP messages",
                "controller rounds",
                "controller pushes",
            ],
            rows,
            title="Ablation A5 — reconvergence after an AS failure "
            "(states verified identical)",
        )
    )

    for point in points:
        # BGP needs propagation rounds and a message storm that grows
        # with the network; the controller needs zero propagation
        # rounds and exactly one push per surviving AS.
        assert point["bgp_rounds"] >= 1
        assert point["bgp_messages"] > point["controller_pushes"]
    assert points[-1]["bgp_messages"] > 2 * points[0]["bgp_messages"]
