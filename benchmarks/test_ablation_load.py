"""Ablation A11: controller scale-out (S shards) x crossing batch (K).

The load engine replays the same seeded open-loop client population
against the routing controller sharded across S enclave instances,
with K requests amortizing each enclave crossing.  The paper's thesis
is that the enclave boundary is the dominant avoidable cost; this
ablation measures exactly that: crossings per served event must fall
roughly as 1/K, while every reply stays byte-identical to the
unsharded controller (pinned separately in tests/load/).
"""

from conftest import emit

from repro.experiments import (
    format_load_ablation,
    run_load_ablation,
)

SHARDS = (1, 2, 4, 8)
BATCHES = (1, 8, 32)


def test_ablation_load_scaleout(once, benchmark):
    grid = once(
        run_load_ablation,
        "routing",
        clients=200,
        shard_counts=SHARDS,
        batch_sizes=BATCHES,
        seed=0,
    )
    emit(format_load_ablation(grid))

    for (shards, batch), doc in grid.items():
        crossings = doc["crossings"]["per_event"]
        benchmark.extra_info[f"s{shards}_k{batch}_crossings_per_event"] = crossings
        benchmark.extra_info[f"s{shards}_k{batch}_events_per_gcycle"] = (
            doc["throughput"]["events_per_gcycle"]
        )

    # ---- Batching amortizes the boundary: at every shard count,
    # crossings per event fall monotonically with K, and K=32 beats
    # K=1 by at least 4x (acceptance bar; measured ~13x).
    for shards in SHARDS:
        per_event = [grid[(shards, k)]["crossings"]["per_event"] for k in BATCHES]
        assert per_event == sorted(per_event, reverse=True), (shards, per_event)
        assert per_event[-1] <= per_event[0] / 4, (shards, per_event)

    # ---- Every cell served the full population with no losses.
    for (shards, batch), doc in grid.items():
        assert doc["outcomes"] == {"ok": doc["throughput"]["events"]}, (shards, batch)

    # ---- Same seed, same event stream in every cell: the ablation
    # varies deployment shape only.
    fingerprints = {doc["event_fingerprint"] for doc in grid.values()}
    assert len(fingerprints) == 1
