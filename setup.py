"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel``
package, so PEP 660 editable installs cannot build; ``pip install -e .
--no-build-isolation --no-use-pep517`` falls back to ``setup.py
develop``, which this shim provides.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
